"""Unit tests for the core co-evolution metrics."""

import pytest

from repro.coevolution import (
    CoevolutionMeasures,
    JointProgress,
    advance_over_source,
    advance_over_time,
    always_in_advance,
    attainment_fraction,
    attainment_index,
    theta_synchronicity,
)
from repro.heartbeat import Heartbeat, Month


def joint(project, schema):
    return JointProgress.from_series(project, schema)


class TestJointProgress:
    def test_from_heartbeats_aligns_union(self):
        project = Heartbeat(Month(2020, 1), [5, 5, 0, 0], label="project")
        schema = Heartbeat(Month(2020, 3), [4, 4], label="schema")
        jp = JointProgress.from_heartbeats(project, schema)
        assert jp.n_points == 4
        assert jp.schema[0] == 0.0        # before DDL exists
        assert jp.schema[-1] == pytest.approx(1.0)
        assert jp.project[-1] == pytest.approx(1.0)
        assert jp.time == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            JointProgress(
                start=Month(2020, 1),
                project=(0.5, 1.0),
                schema=(1.0,),
                time=(0.5, 1.0),
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            JointProgress(
                start=Month(2020, 1), project=(), schema=(), time=()
            )

    def test_gap(self):
        jp = joint([0.5, 1.0], [0.8, 1.0])
        assert jp.gap(0) == pytest.approx(0.3)

    def test_months(self):
        jp = JointProgress.from_series(
            [0.5, 1.0], [0.5, 1.0], start=Month(2019, 12)
        )
        assert jp.months == [Month(2019, 12), Month(2020, 1)]


class TestSynchronicity:
    def test_identical_series_full_sync(self):
        jp = joint([0.2, 0.5, 1.0], [0.2, 0.5, 1.0])
        assert theta_synchronicity(jp, 0.0) == pytest.approx(1.0)

    def test_band_counts_inclusively(self):
        jp = joint([0.5, 1.0], [0.6, 1.0])
        assert theta_synchronicity(jp, 0.10) == pytest.approx(1.0)
        assert theta_synchronicity(jp, 0.05) == pytest.approx(0.5)

    def test_fully_out_of_sync(self):
        jp = joint([0.0, 0.0, 0.0, 1.0], [1.0, 1.0, 1.0, 1.0])
        assert theta_synchronicity(jp, 0.10) == pytest.approx(0.25)

    def test_theta_out_of_range(self):
        jp = joint([1.0], [1.0])
        with pytest.raises(ValueError):
            theta_synchronicity(jp, 1.5)

    def test_wider_theta_never_lowers_sync(self):
        jp = joint(
            [0.1, 0.4, 0.6, 1.0],
            [0.3, 0.45, 0.9, 1.0],
        )
        assert theta_synchronicity(jp, 0.10) >= theta_synchronicity(jp, 0.05)


class TestAdvance:
    def test_schema_first_project_all_ahead(self):
        # schema complete at month 0, project catches up linearly
        jp = joint([0.25, 0.5, 0.75, 1.0], [1.0, 1.0, 1.0, 1.0])
        assert advance_over_source(jp) == pytest.approx(1.0)
        assert advance_over_time(jp) == pytest.approx(1.0)

    def test_schema_lagging(self):
        jp = joint([1.0, 1.0, 1.0, 1.0], [0.1, 0.2, 0.3, 1.0])
        # months 1..3: schema behind source except the final month (equal)
        assert advance_over_source(jp) == pytest.approx(1 / 3)

    def test_equality_counts_as_advance(self):
        jp = joint([0.5, 1.0], [0.5, 1.0])
        assert advance_over_source(jp) == pytest.approx(1.0)

    def test_single_month_life_is_blank(self):
        jp = joint([1.0], [1.0])
        assert advance_over_source(jp) is None
        assert advance_over_time(jp) is None

    def test_month_zero_excluded(self):
        # at month 0 schema is behind, but month 0 is the creation month
        jp = joint([0.9, 1.0], [0.1, 1.0])
        assert advance_over_source(jp) == pytest.approx(1.0)

    def test_advance_over_time(self):
        # time progress for 4 points: .25 .5 .75 1
        jp = joint([1.0, 1.0, 1.0, 1.0], [0.6, 0.6, 0.6, 1.0])
        # months 1..3: schema .6 vs time .5 (ahead), .6 vs .75 (behind),
        # 1 vs 1 (ahead)
        assert advance_over_time(jp) == pytest.approx(2 / 3)


class TestAlwaysInAdvance:
    def test_all_three_flags(self):
        jp = joint([0.25, 0.5, 0.75, 1.0], [1.0, 1.0, 1.0, 1.0])
        assert always_in_advance(jp) == (True, True, True)

    def test_time_only(self):
        # schema ahead of time but behind source in month 1
        jp = joint([1.0, 1.0, 1.0], [0.9, 0.9, 1.0])
        over_time, over_source, over_both = always_in_advance(jp)
        assert over_time
        assert not over_source
        assert not over_both

    def test_blank_projects_are_never_always(self):
        jp = joint([1.0], [1.0])
        assert always_in_advance(jp) == (False, False, False)

    def test_late_ddl_breaks_always(self):
        # schema at zero for the first two months
        jp = joint([0.2, 0.4, 0.7, 1.0], [0.0, 0.0, 0.9, 1.0])
        over_time, over_source, _ = always_in_advance(jp)
        assert not over_time
        assert not over_source


class TestAttainment:
    def test_paper_example(self):
        # §6.1: cumulative [20,47,85,95,100,100,100]% for months M0..M6
        schema = [0.20, 0.47, 0.85, 0.95, 1.0, 1.0, 1.0]
        project = [i / 7 for i in range(1, 8)]
        jp = joint(project, schema)
        assert attainment_index(jp, 0.45) == 1

    def test_attainment_fraction_inclusive_convention(self):
        schema = [0.20, 0.47, 0.85, 0.95, 1.0, 1.0]
        project = [i / 6 for i in range(1, 7)]
        jp = joint(project, schema)
        # 45% attained at index 1 => (1+1)/6 of life
        assert attainment_fraction(jp, 0.45) == pytest.approx(2 / 6)

    def test_full_attainment_always_defined(self):
        jp = joint([0.5, 1.0], [0.5, 1.0])
        assert attainment_fraction(jp, 1.0) == pytest.approx(1.0)

    def test_immediate_attainment(self):
        jp = joint([0.5, 1.0], [1.0, 1.0])
        assert attainment_index(jp, 0.75) == 0

    def test_monotone_in_alpha(self):
        schema = [0.3, 0.3, 0.6, 0.8, 1.0]
        project = [i / 5 for i in range(1, 6)]
        jp = joint(project, schema)
        fractions = [
            attainment_fraction(jp, a) for a in (0.25, 0.5, 0.75, 1.0)
        ]
        assert fractions == sorted(fractions)

    def test_alpha_validation(self):
        jp = joint([1.0], [1.0])
        with pytest.raises(ValueError):
            attainment_index(jp, 0.0)
        with pytest.raises(ValueError):
            attainment_index(jp, 1.2)


class TestCoevolutionMeasures:
    def test_of_collects_everything(self):
        project = [0.25, 0.5, 0.75, 1.0]
        schema = [0.8, 0.9, 1.0, 1.0]
        measures = CoevolutionMeasures.of(joint(project, schema))
        assert measures.duration_months == 4
        assert set(measures.sync) == {0.05, 0.10}
        assert set(measures.attainment) == {0.50, 0.75, 0.80, 1.00}
        assert measures.always_over_time
        assert measures.always_over_source
        assert measures.always_over_both

    def test_blank_project_measures(self):
        measures = CoevolutionMeasures.of(joint([1.0], [1.0]))
        assert measures.advance_over_source is None
        assert measures.advance_over_time is None
        assert not measures.always_over_both

    def test_custom_thetas_and_alphas(self):
        measures = CoevolutionMeasures.of(
            joint([0.5, 1.0], [0.5, 1.0]),
            thetas=(0.2,),
            alphas=(0.9,),
        )
        assert list(measures.sync) == [0.2]
        assert list(measures.attainment) == [0.9]
