"""Unit tests for the metrics registry and its snapshot algebra.

The snapshot/merge semantics are what make cross-process metrics work:
``after - before`` must be an exact, picklable delta (which is why
histograms carry only buckets/sum/count), and folding deltas with ``+``
must reconstruct the study total.
"""

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    get_metrics,
    reset_metrics,
)
from repro.perf.cache import CacheStats


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_metrics()
    yield
    reset_metrics()


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("projects.mined")
        registry.inc("projects.mined", 4)
        assert registry.counter("projects.mined") == 5
        assert registry.counter("never-touched") == 0

    def test_gauges_keep_the_latest_value(self):
        registry = MetricsRegistry()
        registry.gauge("jobs", 1)
        registry.gauge("jobs", 4)
        assert registry.snapshot().gauges["jobs"] == 4

    def test_snapshot_is_an_independent_copy(self):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.observe("lat", 0.01)
        snap = registry.snapshot()
        registry.inc("n")
        registry.observe("lat", 0.01)
        assert snap.counters["n"] == 1
        assert snap.histograms["lat"].count == 1

    def test_global_registry_survives_until_reset(self):
        get_metrics().inc("x")
        assert get_metrics().counter("x") == 1
        reset_metrics()
        assert get_metrics().counter("x") == 0


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        h = HistogramData(bounds=(0.1, 1.0))
        h.observe(0.05)   # bucket 0: <= 0.1
        h.observe(0.5)    # bucket 1: <= 1.0
        h.observe(2.0)    # bucket 2: overflow
        h.observe(2.0)
        assert h.counts == [1, 1, 2]
        assert h.count == 4
        assert h.mean == pytest.approx(4.55 / 4)

    def test_empty_histogram_mean_is_zero(self):
        assert HistogramData().mean == 0.0

    def test_add_and_sub_are_exact_inverses(self):
        before = HistogramData(bounds=(0.1, 1.0))
        before.observe(0.05)
        after = before.copy()
        after.observe(0.5)
        after.observe(0.05)
        delta = after - before
        assert delta.counts == [1, 1, 0]
        assert delta.count == 2
        merged = before + delta
        assert merged.counts == after.counts
        assert merged.count == after.count
        assert merged.total == pytest.approx(after.total)

    def test_mismatched_bounds_refuse_to_merge(self):
        with pytest.raises(ValueError):
            HistogramData(bounds=(1.0,)) + HistogramData(bounds=(2.0,))
        with pytest.raises(ValueError):
            HistogramData(bounds=(1.0,)) - HistogramData(bounds=(2.0,))

    def test_default_bounds_cover_the_latency_range(self):
        h = HistogramData()
        assert h.bounds == DEFAULT_BOUNDS
        assert len(h.counts) == len(DEFAULT_BOUNDS) + 1


class TestSnapshotAlgebra:
    def test_add_sums_counters_and_merges_histograms(self):
        a = MetricsSnapshot(counters={"n": 2}, gauges={"g": 1.0})
        a.histograms["lat"] = HistogramData(bounds=(1.0,))
        a.histograms["lat"].observe(0.5)
        b = MetricsSnapshot(counters={"n": 3, "m": 1}, gauges={"g": 2.0})
        b.histograms["lat"] = HistogramData(bounds=(1.0,))
        b.histograms["lat"].observe(0.5)
        merged = a + b
        assert merged.counters == {"n": 5, "m": 1}
        assert merged.gauges["g"] == 2.0  # last write wins
        assert merged.histograms["lat"].count == 2
        # operands are untouched
        assert a.counters == {"n": 2}
        assert a.histograms["lat"].count == 1

    def test_sub_keeps_only_counters_that_moved(self):
        # a forked worker inherits the parent's counters; its delta must
        # not echo them back as zeros
        before = MetricsSnapshot(counters={"inherited": 10, "n": 1})
        after = MetricsSnapshot(counters={"inherited": 10, "n": 4})
        delta = after - before
        assert delta.counters == {"n": 3}

    def test_worker_delta_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("projects.mined", 7)
        registry.observe("diff.seconds", 0.002)
        before = registry.snapshot()
        registry.inc("projects.mined")
        registry.observe("diff.seconds", 0.004)
        delta = registry.snapshot() - before
        total = before + delta
        assert total.counters == registry.snapshot().counters
        assert (
            total.histograms["diff.seconds"].count
            == registry.snapshot().histograms["diff.seconds"].count
        )

    def test_fold_cache_adds_parse_cache_counters(self):
        snap = MetricsSnapshot(counters={"parse_cache.hits": 1})
        snap.fold_cache(CacheStats(hits=4, misses=2, disk_hits=1))
        assert snap.counters["parse_cache.hits"] == 5
        assert snap.counters["parse_cache.misses"] == 2
        assert snap.counters["parse_cache.disk_hits"] == 1

    def test_as_dict_is_json_ready_and_sorted(self):
        snap = MetricsSnapshot(counters={"b": 2, "a": 1}, gauges={"g": 0.5})
        snap.histograms["lat"] = HistogramData(bounds=(1.0,))
        snap.histograms["lat"].observe(0.25)
        payload = snap.as_dict()
        assert list(payload["counters"]) == ["a", "b"]
        hist = payload["histograms"]["lat"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.25)
        assert hist["mean"] == pytest.approx(0.25)
        assert hist["counts"] == [1, 0]
