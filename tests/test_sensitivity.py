"""Unit tests for rebucketing and the sensitivity analyses."""

import pytest

from repro.analysis import (
    canonical_study,
    chronon_sensitivity,
    coarse_joint,
)
from repro.coevolution import CoevolutionMeasures
from repro.heartbeat import Heartbeat, Month


class TestRebucket:
    def test_quarterly(self):
        hb = Heartbeat(Month(2020, 1), [1, 2, 3, 4, 5, 6])
        coarse = hb.rebucket(3)
        assert coarse.values == [6, 15]
        assert coarse.start == Month(2020, 1)

    def test_ragged_tail(self):
        hb = Heartbeat(Month(2020, 1), [1, 1, 1, 1, 1])
        assert hb.rebucket(2).values == [2, 2, 1]

    def test_total_preserved(self):
        hb = Heartbeat(Month(2020, 1), [3, 0, 7, 2, 9, 1, 4])
        for k in (1, 2, 3, 6, 12):
            assert hb.rebucket(k).total == hb.total

    def test_identity_chronon(self):
        hb = Heartbeat(Month(2020, 1), [1, 2])
        clone = hb.rebucket(1)
        assert clone.values == hb.values
        assert clone is not hb

    def test_invalid_chronon(self):
        with pytest.raises(ValueError):
            Heartbeat(Month(2020, 1), [1]).rebucket(0)


class TestCoarseJoint:
    @pytest.fixture(scope="class")
    def study(self):
        return canonical_study()

    def test_coarse_joint_shape(self, study):
        project = next(
            p for p in study.projects if p.duration_months >= 12
        )
        coarse = coarse_joint(project, 3)
        assert coarse.n_points <= (project.joint.n_points + 2) // 3 + 1
        assert coarse.schema[-1] == pytest.approx(1.0)
        assert coarse.project[-1] == pytest.approx(1.0)

    def test_coarse_measures_are_computable(self, study):
        project = next(
            p for p in study.projects if p.duration_months >= 12
        )
        measures = CoevolutionMeasures.of(coarse_joint(project, 3))
        assert 0 <= measures.sync[0.10] <= 1

    def test_chronon_sensitivity_rows(self, study):
        rows = chronon_sensitivity(study.projects, chronon_months=3)
        assert [r.measure for r in rows] == ["sync_10", "attainment_75"]
        for row in rows:
            assert -1 <= row.kendall_tau <= 1
            assert row.chronon_months == 3

    def test_coarser_chronon_raises_sync(self, study):
        """A wider bucket can only bring the two progressions closer at
        matched time-points, so median sync should not collapse."""
        rows = chronon_sensitivity(study.projects, chronon_months=6)
        sync_row = rows[0]
        assert sync_row.median_coarse >= sync_row.median_monthly - 0.1
