"""Unit tests for counterfactual scenario corpora."""

import pytest

from repro.corpus import (
    SCENARIOS,
    generate_scenario,
    scenario_profiles,
)
from repro.taxa import Taxon


class TestScenarioProfiles:
    def test_all_scenarios_sum_to_195(self):
        for name in SCENARIOS:
            profiles = scenario_profiles(name)
            assert sum(p.count for p in profiles) == 195, name

    def test_observed_matches_canonical(self):
        from repro.corpus import CANONICAL_PROFILES

        observed = scenario_profiles("OBSERVED")
        assert [p.count for p in observed] == [
            p.count for p in CANONICAL_PROFILES
        ]

    def test_rigid_world_is_frozen_heavy(self):
        profiles = {p.taxon: p for p in scenario_profiles("RIGID_WORLD")}
        frozen_side = sum(
            p.count for t, p in profiles.items() if t.is_frozenish
        )
        assert frozen_side >= 0.8 * 195

    def test_agile_world_is_active_heavy(self):
        profiles = {p.taxon: p for p in scenario_profiles("AGILE_WORLD")}
        active_side = (
            profiles[Taxon.MODERATE].count
            + profiles[Taxon.FOCUSED_SHOT_AND_LOW].count
            + profiles[Taxon.ACTIVE].count
        )
        assert active_side >= 0.8 * 195

    def test_only_counts_differ_from_canonical(self):
        """Scenarios change the mix, never the behavioural knobs."""
        from repro.corpus import CANONICAL_PROFILES

        for name in SCENARIOS:
            for scenario, canonical in zip(
                scenario_profiles(name), CANONICAL_PROFILES
            ):
                import dataclasses

                assert dataclasses.replace(
                    scenario, count=canonical.count
                ) == canonical

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario_profiles("UTOPIA")


class TestGenerateScenario:
    def test_generates_195_projects(self):
        corpus = generate_scenario("RIGID_WORLD", seed=77)
        assert len(corpus) == 195

    def test_mix_respected(self):
        corpus = generate_scenario("AGILE_WORLD", seed=77)
        active = sum(1 for p in corpus if p.true_taxon is Taxon.ACTIVE)
        assert active == 70

    def test_deterministic(self):
        a = generate_scenario("SHOT_WORLD", seed=3)
        b = generate_scenario("SHOT_WORLD", seed=3)
        assert [p.name for p in a] == [p.name for p in b]
