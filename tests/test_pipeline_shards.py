"""Shard planning: key determinism, override locality, batching, and
the stage-version drift guard."""

import dataclasses

import pytest

from repro.corpus.generator import corpus_specs
from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.pipeline import (
    CODE_VERSIONS,
    MemoryStore,
    Pipeline,
    family_fingerprint,
    plan_shards,
    profile_digest,
    shard_batches,
    spec_digest,
    stage_source_digest,
)


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


def _pairs(seed: int = 7):
    from repro.corpus.profiles import scaled_profiles

    return corpus_specs(seed=seed, profiles=scaled_profiles(32))


class TestSpecDigests:
    def test_spec_digest_is_deterministic(self):
        spec = _pairs()[0][0]
        assert spec_digest(spec) == spec_digest(spec)

    def test_spec_digest_tracks_every_field(self):
        spec = _pairs()[0][0]
        assert spec_digest(
            dataclasses.replace(spec, seed=spec.seed + 1)
        ) != spec_digest(spec)
        other_vendor = "mysql" if spec.vendor == "postgres" else "postgres"
        assert spec_digest(
            dataclasses.replace(spec, vendor=other_vendor)
        ) != spec_digest(spec)

    def test_profile_digest_is_deterministic(self):
        profile = _pairs()[0][1]
        assert profile_digest(profile) == profile_digest(profile)


class TestPlanShards:
    def test_keys_are_deterministic(self):
        a = plan_shards(_pairs(), CODE_VERSIONS)
        b = plan_shards(_pairs(), CODE_VERSIONS)
        assert [s.keys for s in a] == [s.keys for s in b]
        assert [s.project for s in a] == [s.project for s in b]

    def test_keys_chain_through_the_map_cone(self):
        # a generate-version bump must re-key mine and analyze too
        bumped = {**CODE_VERSIONS, "generate": "bumped"}
        a = plan_shards(_pairs(), CODE_VERSIONS)[0]
        b = plan_shards(_pairs(), bumped)[0]
        assert a.keys["generate"] != b.keys["generate"]
        assert a.keys["mine"] != b.keys["mine"]
        assert a.keys["analyze"] != b.keys["analyze"]

    def test_one_spec_change_rekeys_one_shard(self):
        pairs = _pairs()
        mutated = list(pairs)
        spec, profile = mutated[0]
        mutated[0] = (dataclasses.replace(spec, seed=999_999), profile)
        a = plan_shards(pairs, CODE_VERSIONS)
        b = plan_shards(mutated, CODE_VERSIONS)
        assert a[0].keys != b[0].keys
        for left, right in zip(a[1:], b[1:]):
            assert left.keys == right.keys

    def test_family_fingerprint_tracks_the_shard_set(self):
        shards = plan_shards(_pairs(), CODE_VERSIONS)
        keys = [s.keys["analyze"] for s in shards]
        family = family_fingerprint("analyze", keys)
        # order-independent, content-dependent
        assert family == family_fingerprint("analyze", list(reversed(keys)))
        assert family != family_fingerprint("analyze", keys[1:])
        assert family != family_fingerprint("mine", keys)

    def test_empty_plan_is_a_valid_family(self):
        assert plan_shards([], CODE_VERSIONS) == []
        assert family_fingerprint("analyze", [])


class TestShardBatches:
    def test_even_split(self):
        assert shard_batches([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_remainder_spreads_forward(self):
        batches = shard_batches(list(range(5)), 2)
        assert batches == [[0, 1, 2], [3, 4]]

    def test_count_larger_than_items_yields_singletons(self):
        assert shard_batches([1, 2], 5) == [[1], [2]]

    def test_empty_items(self):
        assert shard_batches([], 4) == []

    def test_nonpositive_count(self):
        assert shard_batches([1, 2], 0) == []

    def test_every_batch_nonempty_and_order_preserved(self):
        items = list(range(13))
        batches = shard_batches(items, 4)
        assert all(batches)
        assert [x for batch in batches for x in batch] == items


class TestVersionDriftGuard:
    def _tamper(self, pipe: Pipeline, key: str, **meta_updates) -> None:
        artifact = pipe.store.get(key)
        meta = dict(artifact.meta)
        meta.update(meta_updates)
        pipe.store.put(key, artifact.payload, meta=meta)

    def test_clean_store_reports_no_drift(self):
        pipe = Pipeline(scale=32, store=MemoryStore())
        pipe.study()
        assert pipe.version_drift() == []

    def test_source_change_without_version_bump_is_flagged(self):
        # simulate: the figures module changed (different source
        # digest) but FIGURES_VERSION was not bumped
        pipe = Pipeline(scale=32, store=MemoryStore())
        pipe.study()
        self._tamper(
            pipe, pipe.fingerprint("figures"), source_digest="0" * 64
        )
        drifted = pipe.version_drift()
        assert [d["stage"] for d in drifted] == ["figures"]
        assert drifted[0]["current"] == stage_source_digest("figures")
        assert drifted[0]["stored"] == "0" * 64

    def test_map_stage_drift_checks_a_shard_artifact(self):
        pipe = Pipeline(scale=32, store=MemoryStore())
        pipe.study()
        self._tamper(
            pipe, pipe.shards()[0].keys["mine"], source_digest="f" * 64
        )
        assert "mine" in [d["stage"] for d in pipe.version_drift()]

    def test_bumped_version_silences_the_warning(self):
        # a changed digest *with* a changed code_version is the healthy
        # path: the old artifact belongs to the old version
        pipe = Pipeline(scale=32, store=MemoryStore())
        pipe.study()
        self._tamper(
            pipe,
            pipe.fingerprint("figures"),
            source_digest="0" * 64,
            code_version="older",
        )
        assert pipe.version_drift() == []

    def test_artifacts_without_digest_are_ignored(self):
        # artifacts written before the drift guard have no digest;
        # they cannot be judged and must not warn
        pipe = Pipeline(scale=32, store=MemoryStore())
        pipe.study()
        self._tamper(pipe, pipe.fingerprint("figures"), source_digest=None)
        assert pipe.version_drift() == []

    def test_stored_artifacts_carry_the_current_digest(self):
        pipe = Pipeline(scale=32, store=MemoryStore())
        pipe.study()
        meta = pipe.store.meta_of(pipe.fingerprint("aggregate"))
        assert meta["source_digest"] == stage_source_digest("aggregate")
        shard_meta = pipe.store.meta_of(pipe.shards()[0].keys["analyze"])
        assert shard_meta["source_digest"] == stage_source_digest("analyze")
