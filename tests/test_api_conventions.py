"""Meta-tests: public-API conventions hold across the whole package.

Deliverable-level guarantees: every public module, class and function is
documented; every package re-exports exactly what its ``__all__``
declares; the version string is sane.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.coevolution",
    "repro.corpus",
    "repro.diff",
    "repro.heartbeat",
    "repro.io",
    "repro.migrate",
    "repro.mining",
    "repro.querydep",
    "repro.report",
    "repro.schema",
    "repro.smo",
    "repro.sqlparser",
    "repro.stats",
    "repro.taxa",
    "repro.vcs",
]


def all_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


class TestDocstrings:
    @pytest.mark.parametrize("module_name", all_modules())
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_symbols_documented(self, package_name):
        package = importlib.import_module(package_name)
        undocumented = []
        for name in getattr(package, "__all__", []):
            symbol = getattr(package, name)
            if inspect.isclass(symbol) or inspect.isfunction(symbol):
                if not inspect.getdoc(symbol):
                    undocumented.append(name)
        assert not undocumented, (
            f"{package_name}: undocumented public symbols {undocumented}"
        )


class TestAllExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_no_duplicate_all_entries(self, package_name):
        package = importlib.import_module(package_name)
        exported = list(getattr(package, "__all__", []))
        assert len(exported) == len(set(exported)), package_name


class TestVersion:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)
