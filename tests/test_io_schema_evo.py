"""Unit tests for the Schema_Evo-style per-project dataset export."""

import pytest

from repro.analysis import run_study
from repro.coevolution import CoevolutionMeasures
from repro.corpus import ProjectSpec, generate_project, profile_for
from repro.heartbeat import Month
from repro.io import read_heartbeat_csv, write_schema_evo_dataset
from repro.taxa import Taxon


@pytest.fixture(scope="module")
def study():
    projects = []
    for i, taxon in enumerate(
        [Taxon.ALMOST_FROZEN, Taxon.MODERATE, Taxon.ACTIVE]
    ):
        spec = ProjectSpec(
            name=f"se/proj-{i}",
            taxon=taxon,
            seed=500 + i,
            vendor="mysql",
            duration_months=24,
            start=Month(2016, 2),
        )
        projects.append(generate_project(spec, profile_for(taxon)))
    return run_study(projects)


class TestWriteDataset:
    def test_layout(self, study, tmp_path):
        root = write_schema_evo_dataset(study, tmp_path / "ds")
        assert (root / "projects.csv").exists()
        heartbeats = sorted((root / "heartbeats").glob("*.csv"))
        assert len(heartbeats) == 3
        assert heartbeats[0].name == "se__proj-0.csv"

    def test_heartbeat_roundtrip(self, study, tmp_path):
        root = write_schema_evo_dataset(study, tmp_path / "ds")
        for project in study.projects:
            path = root / "heartbeats" / (
                project.name.replace("/", "__") + ".csv"
            )
            joint = read_heartbeat_csv(path)
            assert joint.n_points == project.joint.n_points
            assert joint.start == project.joint.start
            for a, b in zip(joint.schema, project.joint.schema):
                assert a == pytest.approx(b, abs=1e-6)

    def test_measures_recomputable_from_csv(self, study, tmp_path):
        """The exported series alone reproduce the paper's measures."""
        root = write_schema_evo_dataset(study, tmp_path / "ds")
        for project in study.projects:
            path = root / "heartbeats" / (
                project.name.replace("/", "__") + ".csv"
            )
            recomputed = CoevolutionMeasures.of(read_heartbeat_csv(path))
            assert recomputed.sync[0.10] == pytest.approx(
                project.sync10, abs=1e-5
            )
            assert recomputed.attainment[0.75] == pytest.approx(
                project.attainment(0.75), abs=1e-5
            )

    def test_empty_heartbeat_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text(
            "month,schema_cum_fraction,project_cum_fraction,time_progress\n"
        )
        with pytest.raises(ValueError):
            read_heartbeat_csv(path)


class TestStudyJson:
    def test_roundtrip(self, study, tmp_path):
        from repro.io import export_study_json, read_study_json

        path = export_study_json(study, tmp_path / "study.json")
        data = read_study_json(path)
        assert data["projects"] == 3
        assert sum(data["fig4"]["counts"]) == 3
        assert len(data["fig5"]) == 3
        assert len(data["fig7"]) == 6  # all taxa rows
        assert "1" in data["fig8"]["counts"]

    def test_small_study_statistics_null(self, study, tmp_path):
        from repro.io import export_study_json, read_study_json

        data = read_study_json(
            export_study_json(study, tmp_path / "s.json")
        )
        assert data["statistics"] is None  # 3 projects: no §7 battery

    def test_canonical_statistics_section(self, tmp_path):
        from repro.analysis import canonical_study
        from repro.io import export_study_json, read_study_json

        data = read_study_json(
            export_study_json(canonical_study(), tmp_path / "c.json")
        )
        stats = data["statistics"]
        assert set(stats["lag_tests"]) == {"time", "source", "both"}
        assert -1 <= stats["tau_sync"] <= 1

    def test_bad_format_rejected(self, tmp_path):
        import json

        from repro.io import read_study_json

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "other"}))
        import pytest as _pytest

        with _pytest.raises(ValueError):
            read_study_json(bad)
