"""End-to-end pipeline studies: warm replays, fused-engine equivalence,
degenerate corpora, corrupted stores.

The acceptance contract of the sharded stage graph: a warm-store rerun
is byte-identical to the cold run (serial or parallel) *and* to the
fused whole-corpus engine, clean shards are served from the store, and
a damaged store entry is recomputed — never served.
"""

import pytest

from repro.analysis.study import StudyResult
from repro.corpus.generator import ProjectSpec
from repro.corpus.profiles import profile_for
from repro.heartbeat import Month
from repro.obs.events import get_recorder, reset_recorder
from repro.obs.metrics import reset_metrics
from repro.pipeline import DirStore, MemoryStore, Pipeline
from repro.taxa import Taxon
from repro.vcs import (
    Commit,
    FileChange,
    FileVersion,
    Repository,
    synthetic_sha,
    utc,
)

SCALE = 16


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


def _codes():
    return [record["code"] for record in get_recorder().warnings]


def _hollow_plan(count: int) -> list[tuple]:
    """An explicit shard plan of ``count`` all-skip projects."""
    profile = profile_for(Taxon.FROZEN)
    return [
        (
            ProjectSpec(
                name=f"demo/hollow-{index}",
                taxon=Taxon.FROZEN,
                seed=index,
                vendor="mysql",
                duration_months=1,
                start=Month(2020, 1),
            ),
            profile,
        )
        for index in range(count)
    ]


def _hollow_pipeline(store, count: int) -> Pipeline:
    """A pipeline over ``count`` projects whose analyses all skip.

    The plan's ``generate`` shards are planted by hand with projects
    whose recorded DDL never defines a table, so every analysis raises
    ``ZeroTotalError`` — the empty-history skip — while mining still
    runs for real.
    """
    pipe = Pipeline(store=store, plan=_hollow_plan(count))
    for index, shard in enumerate(pipe.shards()):
        repo = Repository(name=shard.project)
        for i in range(3):
            repo.add_commit(
                Commit(
                    synthetic_sha(index * 10 + i), "D", "d@x",
                    utc(2020, 1 + i), "c",
                    [FileChange("M" if i else "A", "schema.sql"),
                     FileChange("M", "src/app.py")],
                )
            )
        repo.record_version(
            "schema.sql",
            FileVersion(synthetic_sha(index * 10), utc(2020, 1), ""),
        )

        class _Project:
            name = repo.name
            repository = repo
            true_taxon = None

        store.put(
            shard.keys["generate"],
            _Project(),
            meta={"stage": "generate", "warnings": [], "metrics": None},
        )
    return pipe


class TestWarmReplay:
    def test_cold_and_warm_reports_are_byte_identical(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        cold = Pipeline(scale=SCALE, store=DirStore(store_dir))
        cold_text = cold.report()

        warm = Pipeline(scale=SCALE, store=DirStore(store_dir))
        warm_text = warm.report()
        assert warm_text == cold_text
        assert warm.timings.artifact_totals.hits == 1  # report itself
        assert warm.timings.artifact_totals.recomputes == 0

    def test_sharded_report_matches_the_fused_engine(self, tmp_path):
        # the acceptance bar of the refactor: a sharded cold run, its
        # warm replay and the whole-corpus fused engine all render the
        # same bytes
        from repro.analysis.study import run_study
        from repro.corpus.generator import generate_corpus
        from repro.corpus.profiles import scaled_profiles
        from repro.report import build_study_report

        store_dir = tmp_path / "artifacts"
        cold = Pipeline(seed=77, scale=SCALE, store=DirStore(store_dir))
        cold_text = cold.report()
        warm = Pipeline(seed=77, scale=SCALE, store=DirStore(store_dir))
        warm_text = warm.report()

        fused = run_study(
            generate_corpus(seed=77, profiles=scaled_profiles(SCALE))
        )
        assert cold_text == build_study_report(fused)
        assert warm_text == cold_text

    def test_parallel_run_reuses_serial_artifacts(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        serial = Pipeline(scale=SCALE, jobs=1, store=DirStore(store_dir))
        serial_study = serial.study()

        parallel = Pipeline(scale=SCALE, jobs=4, store=DirStore(store_dir))
        parallel_study = parallel.study()
        assert parallel_study.projects == serial_study.projects
        # jobs is not a fingerprint input: every clean stage hits
        stats = parallel.timings.artifacts
        for stage in ("aggregate", "figures", "statistics"):
            assert stats[stage].hits == 1, stage
        assert parallel.timings.artifact_totals.recomputes == 0

    def test_parallel_cold_run_matches_serial_cold_run(self, tmp_path):
        serial = Pipeline(
            scale=SCALE, jobs=1, store=DirStore(tmp_path / "a")
        ).study()
        parallel = Pipeline(
            scale=SCALE, jobs=4, store=DirStore(tmp_path / "b")
        ).study()
        assert parallel.projects == serial.projects
        assert parallel.skipped == serial.skipped

    def test_warm_run_replays_cold_warnings(self):
        store = MemoryStore()
        cold = _hollow_pipeline(store, 1)
        cold.study()
        assert _codes() == ["empty-history"]

        reset_recorder()
        warm = _hollow_pipeline(store, 1)
        warm.study()
        # the skip warning came out of the aggregate artifact meta —
        # the shard itself was never probed
        assert _codes() == ["empty-history"]
        assert warm.timings.artifacts["aggregate"].hits == 1
        assert "analyze" not in warm.timings.artifacts


class TestHeadlineMemo:
    def test_repeated_headline_is_the_same_object(self):
        study = Pipeline(scale=SCALE, store=MemoryStore()).study()
        assert study.headline() is study.headline()

    def test_memo_holds_without_pipeline_priming(self):
        study = StudyResult(projects=[], skipped=[])
        assert study.headline() is study.headline()

    def test_figures_memoised_too(self):
        study = Pipeline(scale=SCALE, store=MemoryStore()).study()
        assert study.fig4() is study.fig4()
        assert study.fig8() is study.fig8()


class TestDegenerateCorpora:
    def test_empty_corpus_studies_cleanly(self):
        pipe = Pipeline(store=MemoryStore(), plan=[])
        study = pipe.study()
        assert study.projects == []
        assert study.skipped == []
        assert study.headline()["projects"] == 0
        assert study.fig6() is not None  # no ZeroDivisionError

    def test_empty_corpus_report_renders(self):
        pipe = Pipeline(store=MemoryStore(), plan=[])
        text = pipe.report()
        assert "0 projects analysed" in text
        # the §7 battery cannot run on nothing; the report says so
        assert "not computed" in text

    def test_empty_corpus_warm_replay_is_byte_identical(self):
        store = MemoryStore()
        cold_text = Pipeline(store=store, plan=[]).report()
        warm = Pipeline(store=store, plan=[])
        assert warm.report() == cold_text
        assert warm.timings.artifact_totals.recomputes == 0

    def test_single_all_skipped_shard_still_reports(self):
        store = MemoryStore()
        cold = _hollow_pipeline(store, 1)
        cold_text = cold.report()
        assert "0 projects analysed, 1 skipped" in cold_text

        warm = _hollow_pipeline(store, 1)
        assert warm.report() == cold_text
        assert warm.timings.artifact_totals.recomputes == 0

    def test_all_projects_skipped(self):
        pipe = _hollow_pipeline(MemoryStore(), 3)
        study = pipe.study()
        assert study.projects == []
        assert study.skipped == [
            "demo/hollow-0", "demo/hollow-1", "demo/hollow-2",
        ]
        assert _codes() == ["empty-history"] * 3
        assert study.metrics.counters["projects.skipped"] == 3

    def test_all_skipped_report_renders(self):
        pipe = _hollow_pipeline(MemoryStore(), 2)
        text = pipe.report()
        assert "0 projects analysed, 2 skipped" in text

    def test_statistics_error_replays_from_the_artifact(self):
        store = MemoryStore()
        pipe = Pipeline(store=store, plan=[])
        with pytest.raises(ValueError):
            pipe.study().statistics()

        warm = Pipeline(store=store, plan=[])
        with pytest.raises(ValueError):
            warm.study().statistics()
        assert warm.timings.artifacts["statistics"].hits == 1


class TestCorruptedStore:
    def _corrupt_entry(self, store_dir, key: str) -> None:
        path = store_dir / "objects" / key[:2] / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 3])

    def test_corrupt_aggregate_recomputes_from_warm_shards(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        cold = Pipeline(scale=SCALE, store=DirStore(store_dir))
        cold_study = cold.study()
        n = len(cold.shards())
        self._corrupt_entry(store_dir, cold.fingerprint("aggregate"))

        rerun = Pipeline(scale=SCALE, store=DirStore(store_dir))
        study = rerun.study()
        assert "store-corrupt" in _codes()
        assert study.projects == cold_study.projects
        stats = rerun.timings.artifacts
        assert stats["aggregate"].recomputes == 1
        # the fold re-ran but every analyze shard stayed warm
        assert stats["analyze"].hits == n
        # downstream keys were unchanged, so figures still hit
        assert stats["figures"].hits == 1

    def test_corrupt_analyze_shard_recomputes_identically(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        cold = Pipeline(scale=SCALE, store=DirStore(store_dir))
        cold_study = cold.study()
        n = len(cold.shards())
        self._corrupt_entry(store_dir, cold.shards()[0].keys["analyze"])
        # the warm aggregate would mask the shard; drop the reduce tail
        # so the map phase actually probes it
        cold.invalidate("aggregate")

        rerun = Pipeline(scale=SCALE, store=DirStore(store_dir))
        study = rerun.study()
        assert "store-corrupt" in _codes()
        assert study.projects == cold_study.projects
        stats = rerun.timings.artifacts
        assert stats["analyze"].recomputes == 1
        assert stats["analyze"].hits == n - 1
        assert stats["mine"].hits == 1  # upstream stayed warm

    def test_corrupt_entry_never_serves_bad_bytes(self, tmp_path):
        store_dir = tmp_path / "artifacts"
        cold = Pipeline(scale=SCALE, store=DirStore(store_dir))
        cold_text = cold.report()
        self._corrupt_entry(store_dir, cold.fingerprint("report"))

        rerun = Pipeline(scale=SCALE, store=DirStore(store_dir))
        assert rerun.report() == cold_text
        assert "store-corrupt" in _codes()
        assert rerun.store.stats.corrupt == 1
