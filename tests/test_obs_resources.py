"""Resource telemetry: the /proc-backed sampler, the monitor's window
protocol, and how per-scope footprints surface in timings payloads,
manifests, and worker results."""

import threading

import pytest

from repro.obs.resources import (
    ResourceMonitor,
    ResourceSample,
    current_rss_bytes,
    get_monitor,
    peak_rss_bytes,
    process_sample,
)
from repro.perf.timing import StudyTimings

MIB = 2**20


class TestSamplers:
    def test_rss_sources_report_plausible_bytes(self):
        # a live CPython process is at least a few MiB resident
        assert current_rss_bytes() > 4 * MIB
        assert peak_rss_bytes() >= current_rss_bytes() // 2

    def test_process_sample_shape(self):
        sample = process_sample()
        assert sample.peak_rss_bytes > 0
        assert sample.cpu_seconds >= 0
        assert sample.as_dict() == {
            "peak_rss_bytes": sample.peak_rss_bytes,
            "cpu_seconds": round(sample.cpu_seconds, 6),
        }

    def test_sample_is_immutable(self):
        sample = ResourceSample(1, 0.0, 0.0)
        with pytest.raises(AttributeError):
            sample.peak_rss_bytes = 2


class TestResourceMonitor:
    def test_window_captures_a_sample(self):
        monitor = ResourceMonitor()
        with monitor.window() as window:
            sum(range(10_000))
        sample = window.sample
        assert sample.peak_rss_bytes > 0
        assert sample.cpu_seconds >= 0

    def test_concurrent_windows_are_independent(self):
        monitor = ResourceMonitor()
        outer = monitor.open_window()
        inner = monitor.open_window()
        inner_sample = monitor.close_window(inner)
        outer_sample = monitor.close_window(outer)
        assert inner_sample.peak_rss_bytes > 0
        assert outer_sample.peak_rss_bytes >= inner_sample.peak_rss_bytes

    def test_global_monitor_is_a_singleton_with_a_daemon_thread(self):
        assert get_monitor() is get_monitor()
        with get_monitor().window() as window:
            pass
        assert window.sample.peak_rss_bytes > 0
        samplers = [
            t for t in threading.enumerate()
            if t.daemon and "resource" in t.name.lower()
        ]
        assert samplers


class TestTimingsResources:
    def test_record_resource_folds_peaks_and_sums_cpu(self):
        timings = StudyTimings()
        timings.record_resource(
            "workers", {"peak_rss_bytes": 100, "cpu_seconds": 1.0}
        )
        timings.record_resource(
            "workers", {"peak_rss_bytes": 50, "cpu_seconds": 2.0}
        )
        scope = timings.resources["workers"]
        assert scope["peak_rss_bytes"] == 100  # max, not sum
        assert scope["cpu_seconds"] == 3.0  # sum, not max

    def test_accepts_resource_samples_directly(self):
        timings = StudyTimings()
        timings.record_resource("driver", ResourceSample(7, 0.25, 0.25))
        assert timings.resources["driver"] == {
            "peak_rss_bytes": 7, "cpu_seconds": 0.5,
        }

    def test_all_zero_samples_are_dropped(self):
        timings = StudyTimings()
        timings.record_resource(
            "driver", {"peak_rss_bytes": 0, "cpu_seconds": 0.0}
        )
        assert timings.resources == {}

    def test_merge_folds_scopes(self):
        a, b = StudyTimings(), StudyTimings()
        a.record_resource("workers", {"peak_rss_bytes": 10,
                                      "cpu_seconds": 1.0})
        b.record_resource("workers", {"peak_rss_bytes": 20,
                                      "cpu_seconds": 1.0})
        b.record_resource("driver", {"peak_rss_bytes": 5,
                                     "cpu_seconds": 0.5})
        a.merge(b)
        assert a.resources["workers"]["peak_rss_bytes"] == 20
        assert a.resources["workers"]["cpu_seconds"] == 2.0
        assert a.resources["driver"]["peak_rss_bytes"] == 5

    def test_as_dict_surfaces_the_headline_peak(self):
        timings = StudyTimings()
        timings.record_resource("driver", {"peak_rss_bytes": 100,
                                           "cpu_seconds": 1.0})
        timings.record_resource("workers", {"peak_rss_bytes": 300,
                                            "cpu_seconds": 2.0})
        block = timings.as_dict()["resources"]
        assert block["peak_rss_bytes"] == 300
        assert set(block["scopes"]) == {"driver", "workers"}

    def test_no_telemetry_no_block(self):
        assert "resources" not in StudyTimings().as_dict()

    def test_render_mentions_peak_rss(self):
        timings = StudyTimings()
        timings.record_resource("driver", {"peak_rss_bytes": 64 * MIB,
                                           "cpu_seconds": 1.0})
        assert "peak RSS" in timings.render()
        assert "64 MiB" in timings.render()


class TestEndToEndTelemetry:
    @pytest.fixture(scope="class")
    def corpus(self):
        from repro.corpus.generator import generate_corpus
        from repro.corpus.profiles import scaled_profiles

        return generate_corpus(seed=77, profiles=scaled_profiles(32))

    def test_pipeline_study_records_driver_scope(self):
        from repro.pipeline import MemoryStore, Pipeline

        pipe = Pipeline(scale=32, seed=77, store=MemoryStore())
        pipe.study()
        resources = pipe.timings.resources
        assert "driver" in resources
        assert resources["driver"]["peak_rss_bytes"] > 10 * MIB
        payload = pipe.timings.as_dict()
        assert payload["resources"]["peak_rss_bytes"] > 10 * MIB

    def test_manifest_carries_the_resources_block(self, corpus):
        from repro.analysis.study import run_study
        from repro.obs.manifest import build_manifest

        study = run_study(corpus)
        manifest = build_manifest(
            command="study", status="ok", seed=77, study=study,
        )
        block = manifest["timings"]["resources"]
        assert block["peak_rss_bytes"] > 0
        assert "driver" in block["scopes"]

    def test_parallel_workers_ship_their_own_sample(self, corpus):
        from repro.analysis.study import run_study

        study = run_study(corpus, jobs=2)
        resources = study.timings.resources
        assert "workers" in resources
        assert resources["workers"]["peak_rss_bytes"] > 10 * MIB
        assert resources["workers"]["cpu_seconds"] > 0
