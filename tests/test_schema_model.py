"""Unit tests for the schema model."""

import pytest

from repro.schema import (
    Attribute,
    ForeignKey,
    Schema,
    SchemaError,
    Table,
    normalize_type,
    quote_identifier,
)


def make_table(name="users", columns=("id", "name")):
    table = Table(name=name)
    for column in columns:
        table.add_attribute(Attribute(column, normalize_type("int")))
    return table


class TestAttribute:
    def test_key_is_case_insensitive(self):
        assert Attribute("UserID", normalize_type("int")).key == "userid"

    def test_with_type_accepts_string(self):
        attr = Attribute("a", normalize_type("int")).with_type("text")
        assert attr.data_type.family == "text"

    def test_render_sql_not_null_default(self):
        attr = Attribute(
            "name", normalize_type("varchar(10)"), nullable=False,
            default="'x'",
        )
        rendered = attr.render_sql()
        assert "NOT NULL" in rendered
        assert "DEFAULT 'x'" in rendered


class TestTable:
    def test_lookup_case_insensitive(self):
        table = make_table()
        assert "ID" in table
        assert table.get("Id").name == "id"

    def test_duplicate_attribute_rejected(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.add_attribute(Attribute("ID", normalize_type("int")))

    def test_positions_follow_insertion(self):
        table = make_table(columns=("a", "b", "c"))
        assert [attr.position for attr in table.attributes] == [0, 1, 2]

    def test_drop_attribute_renumbers(self):
        table = make_table(columns=("a", "b", "c"))
        table.drop_attribute("b")
        assert table.attribute_names == ["a", "c"]
        assert [attr.position for attr in table.attributes] == [0, 1]

    def test_drop_attribute_prunes_pk(self):
        table = make_table(columns=("a", "b"))
        table.primary_key = ("a", "b")
        table.drop_attribute("a")
        assert table.primary_key == ("b",)

    def test_drop_missing_raises(self):
        with pytest.raises(SchemaError):
            make_table().drop_attribute("ghost")

    def test_replace_attribute_keeps_position(self):
        table = make_table(columns=("a", "b"))
        table.replace_attribute(
            "a", Attribute("a", normalize_type("text"))
        )
        assert table.attributes[0].data_type.family == "text"
        assert table.attributes[0].position == 0

    def test_copy_is_deep_enough(self):
        table = make_table()
        clone = table.copy()
        clone.drop_attribute("id")
        assert "id" in table

    def test_pk_keys(self):
        table = make_table()
        table.primary_key = ("ID",)
        assert table.pk_keys() == frozenset({"id"})

    def test_render_sql_contains_pk(self):
        table = make_table()
        table.primary_key = ("id",)
        assert "PRIMARY KEY (id)" in table.render_sql()

    def test_render_sql_contains_fk(self):
        table = make_table()
        table.foreign_keys.append(ForeignKey(("id",), "other", ("oid",)))
        assert "FOREIGN KEY (id) REFERENCES other (oid)" in table.render_sql()


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema()
        schema.add_table(make_table("Users"))
        assert "users" in schema
        assert schema.table("USERS").name == "Users"

    def test_duplicate_table_rejected(self):
        schema = Schema()
        schema.add_table(make_table("t"))
        with pytest.raises(SchemaError):
            schema.add_table(make_table("T"))

    def test_drop_table(self):
        schema = Schema()
        schema.add_table(make_table("t"))
        schema.drop_table("t")
        assert "t" not in schema
        assert len(schema) == 0

    def test_drop_missing_raises(self):
        with pytest.raises(SchemaError):
            Schema().drop_table("ghost")

    def test_attribute_count(self):
        schema = Schema()
        schema.add_table(make_table("a", columns=("x", "y")))
        schema.add_table(make_table("b", columns=("z",)))
        assert schema.attribute_count == 3

    def test_copy_isolated(self):
        schema = Schema()
        schema.add_table(make_table("t"))
        clone = schema.copy()
        clone.table("t").add_attribute(
            Attribute("extra", normalize_type("int"))
        )
        assert "extra" not in schema.table("t")

    def test_iteration_order_is_insertion(self):
        schema = Schema()
        for name in ("zeta", "alpha", "mid"):
            schema.add_table(make_table(name))
        assert schema.table_names == ["zeta", "alpha", "mid"]


class TestQuoteIdentifier:
    def test_plain_name_unquoted(self):
        assert quote_identifier("users") == "users"

    def test_underscores_ok(self):
        assert quote_identifier("user_id") == "user_id"

    def test_leading_digit_quoted(self):
        assert quote_identifier("1bad") == '"1bad"'

    def test_space_quoted(self):
        assert quote_identifier("two words") == '"two words"'

    def test_embedded_quote_doubled(self):
        assert quote_identifier('a"b') == '"a""b"'
