"""Unit tests for dialect detection and the dialect plugin registry."""

import re

from repro.sqlparser import (
    Dialect,
    detect_dialect,
    get_dialect,
    parse_schema,
    register_dialect,
    registered_dialects,
)


class TestDetectDialect:
    def test_mysql_backticks(self):
        assert detect_dialect("CREATE TABLE `t` (`a` int);") == "mysql"

    def test_mysql_engine(self):
        assert detect_dialect(
            "CREATE TABLE t (a int) ENGINE=InnoDB AUTO_INCREMENT=3;"
        ) == "mysql"

    def test_postgres_serial(self):
        assert detect_dialect(
            "CREATE TABLE t (id SERIAL, b BYTEA);"
        ) == "postgres"

    def test_postgres_casts_and_nextval(self):
        text = "CREATE TABLE t (id int DEFAULT nextval('s'::regclass));"
        assert detect_dialect(text) == "postgres"

    def test_generic_when_no_signals(self):
        assert detect_dialect("CREATE TABLE t (a int);") == "generic"

    def test_parse_schema_records_dialect(self):
        result = parse_schema("CREATE TABLE `t` (a int) ENGINE=X;")
        assert result.schema.dialect == "mysql"

    def test_explicit_hint_wins(self):
        result = parse_schema(
            "CREATE TABLE `t` (a int);", dialect="postgres"
        )
        assert result.schema.dialect == "postgres"

    def test_mixed_signals_majority(self):
        text = (
            "CREATE TABLE t (id SERIAL);\n"
            "CREATE TABLE s (v TIMESTAMPTZ, w BYTEA);\n"
            "-- one backtick `x` in a comment still counts as a signal\n"
        )
        assert detect_dialect(text) == "postgres"


class TestSqliteDetection:
    def test_autoincrement_no_underscore(self):
        text = (
            "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT);\n"
            "PRAGMA foreign_keys = ON;\n"
        )
        assert detect_dialect(text) == "sqlite"

    def test_without_rowid(self):
        text = (
            "PRAGMA journal_mode=WAL;\n"
            "CREATE TABLE kv (k TEXT, v TEXT) WITHOUT ROWID;"
        )
        assert detect_dialect(text) == "sqlite"

    def test_mysql_auto_increment_not_sqlite(self):
        text = "CREATE TABLE t (id INT AUTO_INCREMENT) ENGINE=InnoDB;"
        assert detect_dialect(text) == "mysql"

    def test_ambiguous_tie_is_generic(self):
        # one mysql signal and one sqlite signal
        text = "CREATE TABLE `t` (id INTEGER);\nPRAGMA user_version=1;"
        assert detect_dialect(text) == "generic"

    def test_sqlite_file_parses(self):
        from repro.sqlparser import parse_schema

        text = (
            "PRAGMA foreign_keys=OFF;\n"
            "CREATE TABLE log (id INTEGER PRIMARY KEY AUTOINCREMENT, "
            "msg TEXT NOT NULL);\n"
        )
        result = parse_schema(text)
        assert result.schema.dialect == "sqlite"
        table = result.schema.table("log")
        assert table.attribute("id").auto_increment
        assert table.primary_key == ("id",)

    def test_if_not_exists_heuristic_is_statement_bounded(self):
        # regression: the old `.*` bridged an IF NOT EXISTS in one
        # statement with a sqlite_ reference in the *next* statement on
        # the same line, mis-voting this mixed line as sqlite
        text = (
            "CREATE TABLE IF NOT EXISTS users (id INT); "
            "INSERT INTO sqlite_sequence VALUES ('users', 1);"
        )
        assert detect_dialect(text) == "generic"

    def test_if_not_exists_system_table_still_votes(self):
        text = (
            "CREATE TABLE IF NOT EXISTS sqlite_stat1 "
            "(tbl TEXT, idx TEXT, stat TEXT);"
        )
        assert detect_dialect(text) == "sqlite"

    def test_bounded_heuristic_agrees_with_fragment_scan(self):
        # fragment-local contract: OR of per-segment masks must equal
        # the whole-text fragment mask, even around the regression text
        from repro.sqlparser.dialect import fragment_signal_mask
        from repro.sqlparser.segment import segment_statements

        text = (
            "CREATE TABLE IF NOT EXISTS users (id INT); "
            "INSERT INTO sqlite_sequence VALUES ('users', 1);\n"
            "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT);"
        )
        segments = segment_statements(text)
        assert segments is not None
        combined = 0
        for segment in segments:
            combined |= fragment_signal_mask(" " + segment.text)
        assert combined == fragment_signal_mask(" " + text)


class TestDialectRegistry:
    def test_builtins_registered_in_order(self):
        assert registered_dialects() == ("mysql", "sqlite", "postgres")

    def test_get_dialect_exposes_conventions(self):
        sqlite = get_dialect("sqlite")
        assert sqlite.emitter.rowid_tables
        assert sqlite.emitter.type_name("int") == "INTEGER"
        assert "AUTOINCREMENT" in sqlite.keywords
        mysql = get_dialect("mysql")
        assert mysql.emitter.quote("t") == "`t`"

    def test_register_custom_dialect_round_trip(self):
        import repro.sqlparser.dialect as dialect_mod

        saved = dict(dialect_mod._REGISTRY)
        try:
            register_dialect(Dialect(
                name="duckdb",
                fragment_signals=(re.compile(r"\bHUGEINT\b", re.I),),
            ))
            assert "duckdb" in registered_dialects()
            assert detect_dialect("CREATE TABLE t (x HUGEINT);") == "duckdb"
            # existing dialects keep detecting after the table rebuild
            assert detect_dialect("CREATE TABLE `t` (a int);") == "mysql"
        finally:
            dialect_mod._REGISTRY.clear()
            dialect_mod._REGISTRY.update(saved)
            dialect_mod._rebuild_signal_tables()
        assert "duckdb" not in registered_dialects()
