"""Unit tests for dialect detection."""

from repro.sqlparser import detect_dialect, parse_schema


class TestDetectDialect:
    def test_mysql_backticks(self):
        assert detect_dialect("CREATE TABLE `t` (`a` int);") == "mysql"

    def test_mysql_engine(self):
        assert detect_dialect(
            "CREATE TABLE t (a int) ENGINE=InnoDB AUTO_INCREMENT=3;"
        ) == "mysql"

    def test_postgres_serial(self):
        assert detect_dialect(
            "CREATE TABLE t (id SERIAL, b BYTEA);"
        ) == "postgres"

    def test_postgres_casts_and_nextval(self):
        text = "CREATE TABLE t (id int DEFAULT nextval('s'::regclass));"
        assert detect_dialect(text) == "postgres"

    def test_generic_when_no_signals(self):
        assert detect_dialect("CREATE TABLE t (a int);") == "generic"

    def test_parse_schema_records_dialect(self):
        result = parse_schema("CREATE TABLE `t` (a int) ENGINE=X;")
        assert result.schema.dialect == "mysql"

    def test_explicit_hint_wins(self):
        result = parse_schema(
            "CREATE TABLE `t` (a int);", dialect="postgres"
        )
        assert result.schema.dialect == "postgres"

    def test_mixed_signals_majority(self):
        text = (
            "CREATE TABLE t (id SERIAL);\n"
            "CREATE TABLE s (v TIMESTAMPTZ, w BYTEA);\n"
            "-- one backtick `x` in a comment still counts as a signal\n"
        )
        assert detect_dialect(text) == "postgres"


class TestSqliteDetection:
    def test_autoincrement_no_underscore(self):
        text = (
            "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT);\n"
            "PRAGMA foreign_keys = ON;\n"
        )
        assert detect_dialect(text) == "sqlite"

    def test_without_rowid(self):
        text = (
            "PRAGMA journal_mode=WAL;\n"
            "CREATE TABLE kv (k TEXT, v TEXT) WITHOUT ROWID;"
        )
        assert detect_dialect(text) == "sqlite"

    def test_mysql_auto_increment_not_sqlite(self):
        text = "CREATE TABLE t (id INT AUTO_INCREMENT) ENGINE=InnoDB;"
        assert detect_dialect(text) == "mysql"

    def test_ambiguous_tie_is_generic(self):
        # one mysql signal and one sqlite signal
        text = "CREATE TABLE `t` (id INTEGER);\nPRAGMA user_version=1;"
        assert detect_dialect(text) == "generic"

    def test_sqlite_file_parses(self):
        from repro.sqlparser import parse_schema

        text = (
            "PRAGMA foreign_keys=OFF;\n"
            "CREATE TABLE log (id INTEGER PRIMARY KEY AUTOINCREMENT, "
            "msg TEXT NOT NULL);\n"
        )
        result = parse_schema(text)
        assert result.schema.dialect == "sqlite"
        table = result.schema.table("log")
        assert table.attribute("id").auto_increment
        assert table.primary_key == ("id",)
