"""Unit tests for the synthetic corpus generator."""

import pytest

from repro.corpus import (
    CANONICAL_PROFILES,
    CANONICAL_SIZE,
    GeneratedProject,
    ProjectSpec,
    generate_corpus,
    generate_project,
    profile_for,
)
from repro.heartbeat import Month
from repro.mining import mine_project
from repro.sqlparser import parse_schema
from repro.taxa import Taxon
from repro.vcs import parse_git_log


def spec_for(taxon, *, duration=24, seed=12345, vendor="mysql"):
    return ProjectSpec(
        name=f"org/{taxon.value}-test",
        taxon=taxon,
        seed=seed,
        vendor=vendor,
        duration_months=duration,
        start=Month(2014, 3),
    )


def generate(taxon, **kwargs):
    return generate_project(spec_for(taxon, **kwargs), profile_for(taxon))


class TestGeneratedArtifacts:
    def test_git_log_text_is_parseable(self):
        project = generate(Taxon.MODERATE)
        commits = parse_git_log(project.git_log_text)
        assert len(commits) == len(project.repository.commits)

    def test_ddl_versions_are_parseable(self):
        project = generate(Taxon.ACTIVE)
        for text in project.ddl_versions:
            result = parse_schema(text)
            assert not result.issues

    def test_ddl_versions_attached_to_repository(self):
        project = generate(Taxon.MODERATE)
        versions = project.repository.versions_of(project.spec.ddl_path)
        assert len(versions) == len(project.ddl_versions)
        assert [v.content for v in versions] == project.ddl_versions

    def test_version_dates_are_chronological(self):
        project = generate(Taxon.ACTIVE)
        versions = project.repository.versions_of("schema.sql")
        dates = [v.date for v in versions]
        assert dates == sorted(dates)

    def test_duration_is_exact(self):
        for duration in (1, 7, 36):
            project = generate(Taxon.ALMOST_FROZEN, duration=duration)
            repo = project.repository
            months = (
                Month.of(repo.end_date) - Month.of(repo.start_date) + 1
            )
            assert months == duration

    def test_determinism(self):
        a = generate(Taxon.MODERATE, seed=99)
        b = generate(Taxon.MODERATE, seed=99)
        assert a.git_log_text == b.git_log_text
        assert a.ddl_versions == b.ddl_versions

    def test_different_seeds_differ(self):
        a = generate(Taxon.MODERATE, seed=1)
        b = generate(Taxon.MODERATE, seed=2)
        assert a.git_log_text != b.git_log_text

    def test_mysql_vendor_surface(self):
        project = generate(Taxon.MODERATE, vendor="mysql")
        assert "ENGINE=InnoDB" in project.ddl_versions[0]
        assert "`" in project.ddl_versions[0]

    def test_postgres_vendor_surface(self):
        project = generate(Taxon.MODERATE, vendor="postgres")
        assert "SET client_encoding" in project.ddl_versions[0]
        assert "`" not in project.ddl_versions[0]


class TestTaxonBehaviour:
    def test_frozen_has_no_logical_change(self):
        project = generate(Taxon.FROZEN, duration=30)
        history = mine_project(project.repository)
        post_initial = history.schema_heartbeat.values[1:]
        assert sum(post_initial) == 0

    def test_frozen_still_has_multiple_versions(self):
        project = generate(Taxon.FROZEN, duration=30)
        assert len(project.ddl_versions) >= 2

    def test_active_changes_a_lot(self):
        project = generate(Taxon.ACTIVE, duration=60)
        history = mine_project(project.repository)
        assert sum(history.schema_heartbeat.values[1:]) >= 30

    def test_focused_shot_has_a_spike(self):
        project = generate(Taxon.FOCUSED_SHOT_AND_FROZEN, duration=40)
        history = mine_project(project.repository)
        post = history.schema_heartbeat.values[1:]
        assert max(post) >= 10

    def test_schema_commits_touch_ddl_path(self):
        project = generate(Taxon.MODERATE)
        repo = project.repository
        touching = repo.commits_touching("schema.sql")
        assert len(touching) == len(project.ddl_versions)


class TestCanonicalCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(seed=4242)

    def test_size(self, corpus):
        assert len(corpus) == CANONICAL_SIZE == 195

    def test_taxa_counts_match_profiles(self, corpus):
        for profile in CANONICAL_PROFILES:
            count = sum(
                1 for p in corpus if p.true_taxon is profile.taxon
            )
            assert count == profile.count

    def test_unique_names(self, corpus):
        assert len({p.name for p in corpus}) == len(corpus)

    def test_two_blank_projects(self, corpus):
        blanks = [p for p in corpus if p.spec.duration_months == 1]
        assert len(blanks) == 2

    def test_every_project_mines_cleanly(self, corpus):
        for project in corpus[::13]:  # a spread sample, for speed
            history = mine_project(project.repository)
            assert history.schema_heartbeat.total > 0
            assert history.project_heartbeat.total > 0

    def test_corpus_determinism(self):
        a = generate_corpus(seed=7)
        b = generate_corpus(seed=7)
        assert [p.name for p in a] == [p.name for p in b]
        assert a[50].git_log_text == b[50].git_log_text

    def test_profile_for_unknown_raises(self):
        with pytest.raises(KeyError):
            profile_for("not a taxon")
