"""Unit tests for the co-evolution patching extension."""

import pytest

from repro.migrate import (
    migration_script,
    patch_query,
    plan_coevolution,
    replace_identifiers,
)
from repro.smo import (
    DropAttribute,
    DropTable,
    RenameAttribute,
    RenameTable,
)
from repro.sqlparser import parse_schema


class TestReplaceIdentifiers:
    def test_basic_rename(self):
        out = replace_identifiers(
            "SELECT name FROM users", {"users": "accounts"}
        )
        assert out == "SELECT name FROM accounts"

    def test_word_boundaries_respected(self):
        out = replace_identifiers(
            "SELECT user_id FROM user", {"user": "person"}
        )
        assert out == "SELECT user_id FROM person"

    def test_string_literals_untouched(self):
        out = replace_identifiers(
            "SELECT x FROM t WHERE note = 'rename t here'", {"t": "s"}
        )
        assert out == "SELECT x FROM s WHERE note = 'rename t here'"

    def test_quoted_identifiers_rewritten_in_place(self):
        out = replace_identifiers(
            'SELECT "old name" FROM `old name`', {"old name": "new_name"}
        )
        assert out == 'SELECT "new_name" FROM `new_name`'

    def test_case_insensitive_match(self):
        out = replace_identifiers("SELECT X FROM Users", {"users": "u2"})
        assert out == "SELECT X FROM u2"

    def test_whitespace_and_comments_preserved(self):
        sql = "SELECT a  -- trailing comment\nFROM   t"
        out = replace_identifiers(sql, {"t": "s"})
        assert out == "SELECT a  -- trailing comment\nFROM   s"

    def test_no_renames_is_identity(self):
        sql = "SELECT * FROM t WHERE a = 1"
        assert replace_identifiers(sql, {}) == sql


class TestPatchQuery:
    def test_rename_table(self):
        patched = patch_query(
            "SELECT id FROM posts", [RenameTable("posts", "articles")]
        )
        assert patched.changed
        assert patched.text == "SELECT id FROM articles"

    def test_rename_attribute(self):
        patched = patch_query(
            "SELECT name FROM users WHERE name = 'x'",
            [RenameAttribute("users", "name", "full_name")],
        )
        # both the projection and the WHERE reference are renamed
        assert patched.text == (
            "SELECT full_name FROM users WHERE full_name = 'x'"
        )

    def test_chained_renames(self):
        patched = patch_query(
            "SELECT a FROM t",
            [RenameTable("t", "t2"), RenameAttribute("t2", "a", "b")],
        )
        assert patched.text == "SELECT b FROM t2"

    def test_drop_table_warns(self):
        patched = patch_query(
            "SELECT id FROM sessions", [DropTable("sessions")]
        )
        assert not patched.changed
        assert patched.warnings
        assert "sessions" in patched.warnings[0]

    def test_drop_attribute_warns_only_if_referenced(self):
        hit = patch_query(
            "SELECT email FROM users", [DropAttribute("users", "email")]
        )
        miss = patch_query(
            "SELECT id FROM users", [DropAttribute("users", "email")]
        )
        assert hit.warnings
        assert not miss.warnings

    def test_unrelated_query_unchanged(self):
        patched = patch_query(
            "SELECT x FROM other", [RenameTable("posts", "articles")]
        )
        assert not patched.changed
        assert patched.text == patched.original


class TestMigrationScript:
    def test_script_contains_all_statements(self):
        script = migration_script(
            [RenameTable("a", "b"), DropTable("c")]
        )
        assert "ALTER TABLE a RENAME TO b;" in script
        assert "DROP TABLE c;" in script

    def test_script_is_parseable_and_effective(self):
        base = "CREATE TABLE a (x INT); CREATE TABLE c (y INT);"
        script = migration_script([RenameTable("a", "b"), DropTable("c")])
        result = parse_schema(base + "\n" + script)
        assert result.schema.table_names == ["b"]


class TestPlanCoevolution:
    def test_plan_counts(self):
        plan = plan_coevolution(
            [RenameAttribute("users", "name", "full_name")],
            [
                "SELECT name FROM users",
                "SELECT id FROM users",
            ],
        )
        assert plan.queries_changed == 1
        assert plan.queries_needing_attention == 0
        assert "RENAME COLUMN" in plan.ddl

    def test_plan_flags_manual_work(self):
        plan = plan_coevolution(
            [DropTable("sessions")],
            ["SELECT sid FROM sessions", "SELECT 1 FROM t"],
        )
        assert plan.queries_needing_attention == 1
