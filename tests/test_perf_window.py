"""Unit tests for the backpressured fan-out (`repro.perf.parallel.window_map`).

The window is the streaming engine's memory bound: at most ``window``
planned items are pending at once, results come back in input order,
warm ("ready") items pass through without occupying the window, and a
shrinking window limit takes effect mid-iteration.  The progress/ETA
side is tested with a throttled fake executor: the tracker's ETA must
divide by the *effective* fan-out width (the window), not the nominal
job count.
"""

import pytest

from repro.obs.progress import ProgressChannel, ProgressTracker
from repro.perf.parallel import WindowStats, window_map
from repro.perf.timing import StudyTimings


def _tasks(values):
    return [(i, "task", v) for i, v in enumerate(values)]


class FakeFuture:
    def __init__(self, pool, fn, value):
        self._pool = pool
        self._fn = fn
        self._value = value

    def result(self):
        self._pool.running.remove(self)
        return self._fn(self._value)


class FakeExecutor:
    """Counts concurrently outstanding futures (submit .. result)."""

    def __init__(self):
        self.running: list[FakeFuture] = []
        self.max_running = 0
        self.submitted = 0

    def submit(self, fn, value):
        future = FakeFuture(self, fn, value)
        self.running.append(future)
        self.submitted += 1
        self.max_running = max(self.max_running, len(self.running))
        return future


class TestWindowMap:
    def test_serial_yields_in_order_with_lazy_evaluation(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x * 10

        out = list(window_map(fn, _tasks([1, 2, 3, 4]), window=2))
        assert out == [(0, 10), (1, 20), (2, 30), (3, 40)]
        # serial tasks evaluate at drain time, in yield order
        assert calls == [1, 2, 3, 4]

    def test_executor_in_flight_never_exceeds_window(self):
        pool = FakeExecutor()
        stats = WindowStats()
        out = list(window_map(
            lambda x: x + 1, _tasks(range(20)),
            executor=pool, window=3, stats=stats,
        ))
        assert out == [(i, i + 1) for i in range(20)]
        assert pool.submitted == 20
        assert pool.max_running <= 3
        assert stats.submitted == stats.completed == 20
        assert 0 < stats.max_in_flight <= 3
        assert stats.as_dict() == {
            "submitted": 20,
            "completed": 20,
            "max_in_flight": stats.max_in_flight,
            "shrinks": 0,
        }

    def test_ready_items_pass_through_in_order(self):
        items = [
            ("a", "ready", "warm-a"),
            ("b", "task", 2),
            ("c", "ready", "warm-c"),
            ("d", "task", 4),
            ("e", "ready", "warm-e"),
        ]
        stats = WindowStats()
        out = list(window_map(
            lambda x: x * 2, items, window=2, stats=stats,
        ))
        assert out == [
            ("a", "warm-a"), ("b", 4), ("c", "warm-c"),
            ("d", 8), ("e", "warm-e"),
        ]
        assert stats.submitted == stats.completed == 2

    def test_long_warm_runs_never_accumulate_pending(self):
        # a mostly warm corpus: one cold task then thousands of readies
        # must not pile up behind it — total pending stays window-bound
        items = [(0, "task", 0)] + [
            (i, "ready", i) for i in range(1, 2001)
        ]
        seen = 0
        for _tag, _value in window_map(
            lambda x: x, iter(items), window=2,
        ):
            seen += 1
        assert seen == 2001

    def test_callable_window_shrinks_mid_iteration(self):
        pool = FakeExecutor()
        stats = WindowStats()
        limit = [4]
        out = []
        for tag, value in window_map(
            lambda x: x, _tasks(range(12)),
            executor=pool, window=lambda: limit[0], stats=stats,
        ):
            out.append((tag, value))
            if tag == 3:
                limit[0] = 1
        assert out == [(i, i) for i in range(12)]
        assert stats.shrinks >= 1
        # after the shrink the pool never holds more than the old peak
        assert pool.max_running <= 4

    def test_empty_input(self):
        assert list(window_map(lambda x: x, iter(()), window=2)) == []


class TestWindowedEta:
    """Satellite: progress/ETA stays honest under a bounded window."""

    def _timings(self, jobs):
        timings = StudyTimings(jobs=jobs)
        # 10 completed units at 2 summed worker-seconds each
        for _ in range(10):
            timings.record("mine", 2.0)
        return timings

    def test_eta_divides_by_window_not_jobs(self):
        timings = self._timings(jobs=8)
        # nominal pool width 8, but only 2 shards can be in flight:
        # the remaining 10 units take 10*2/2 s, not 10*2/8 s
        assert timings.eta_seconds(10, 20) == pytest.approx(2.5)
        assert timings.eta_seconds(
            10, 20, parallelism=2
        ) == pytest.approx(10.0)
        # a window wider than the pool never *raises* the divisor
        assert timings.eta_seconds(
            10, 20, parallelism=16
        ) == pytest.approx(2.5)

    def test_tracker_parallelism_feeds_eta(self):
        channel = ProgressChannel()
        records = []
        channel.sink = records.append
        channel.interval = 0.0
        timings = self._timings(jobs=8)
        tracker = ProgressTracker(
            "map", 20, channel=channel, timings=timings, parallelism=2,
        )
        for _ in range(10):
            tracker.update("p", 2.0)
        assert records[-1]["eta_seconds"] == pytest.approx(10.0)
        # the auto-shrink hook narrows the window mid-run
        tracker.set_parallelism(1)
        tracker.update("p", 2.0)
        assert records[-1]["eta_seconds"] > 10.0

    def test_throttled_fake_executor_end_to_end(self):
        """Drive a windowed fan-out and check each heartbeat's ETA."""
        channel = ProgressChannel()
        records = []
        channel.sink = records.append
        channel.interval = 0.0
        timings = StudyTimings(jobs=4)
        tracker = ProgressTracker(
            "map", 8, channel=channel, timings=timings, parallelism=2,
        )
        pool = FakeExecutor()
        for _tag, seconds in window_map(
            lambda x: 2.0, _tasks(range(8)),
            executor=pool, window=2,
        ):
            timings.record("mine", seconds)
            tracker.update("p", seconds)
        assert pool.max_running <= 2
        assert len(records) == 8
        # done=4 of 8: 4 remaining * 2s each / window 2 = 4s — the
        # jobs=4 divisor would have claimed a dishonest 2s
        assert records[3]["eta_seconds"] == pytest.approx(4.0)
        assert records[-1]["eta_seconds"] == 0.0
