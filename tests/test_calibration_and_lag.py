"""Unit tests for the calibration contract and the lag measure."""

import pytest

from repro.analysis import canonical_study
from repro.coevolution import LagProfile, cross_correlation, schema_leads
from repro.corpus import (
    CALIBRATION_TARGETS,
    CalibrationTarget,
    calibration_report,
)
from repro.heartbeat import Heartbeat, Month


@pytest.fixture(scope="module")
def study():
    return canonical_study()


class TestCalibration:
    def test_canonical_study_passes_all_targets(self, study):
        report = calibration_report(study)
        assert report.ok, report.render()

    def test_every_band_contains_its_paper_value_or_states_why(self):
        """Bands must cover the paper value (they are acceptance bands
        for reproducing the paper, not for the synthetic mean)."""
        for target in CALIBRATION_TARGETS:
            low, high = target.band
            assert low <= target.paper_value <= high, target.name

    def test_report_counts(self, study):
        report = calibration_report(study)
        assert report.total == len(CALIBRATION_TARGETS)
        assert report.passed + len(report.misses()) == report.total

    def test_custom_target_failure_detected(self, study):
        impossible = CalibrationTarget(
            name="impossible",
            paper_value=0.5,
            band=(0.49, 0.51),
            extract=lambda s: 99.0,
        )
        report = calibration_report(study, targets=(impossible,))
        assert not report.ok
        assert report.misses()[0].target.name == "impossible"

    def test_outcome_str(self, study):
        outcome = CALIBRATION_TARGETS[0].measure(study)
        assert "blanks" in str(outcome)
        assert "[ok]" in str(outcome) or "[MISS]" in str(outcome)


def hb(values, start=Month(2019, 1)):
    return Heartbeat(start, [float(v) for v in values])


class TestCrossCorrelation:
    def test_identical_series_peak_at_zero(self):
        a = hb([5, 0, 3, 0, 8, 1, 0, 4])
        profile = cross_correlation(a, a, max_lag=3)
        assert profile.best_lag == 0
        assert profile.best_correlation == pytest.approx(1.0)

    def test_shifted_series_detects_lead(self):
        # project echoes schema two months later
        schema = hb([9, 0, 0, 7, 0, 0, 5, 0, 0, 0])
        project = hb([0, 0, 9, 0, 0, 7, 0, 0, 5, 0])
        profile = cross_correlation(schema, project, max_lag=4)
        assert profile.best_lag == 2
        assert profile.best_correlation == pytest.approx(1.0)

    def test_lag_sign_convention(self):
        """Peak at lag k pairs project month m+k with schema month m,
        so a schema-first pair peaks at positive lag and the mirrored
        pair at the negated lag."""
        schema_first = cross_correlation(
            hb([9, 0, 0, 0]), hb([0, 0, 9, 0]), max_lag=3
        )
        project_first = cross_correlation(
            hb([0, 0, 9, 0]), hb([9, 0, 0, 0]), max_lag=3
        )
        assert schema_first.best_lag == 2
        assert schema_first.best_lag == -project_first.best_lag

    def test_misaligned_starts_handled(self):
        schema = hb([4, 0, 4], start=Month(2019, 1))
        project = hb([0, 4, 0, 4], start=Month(2019, 2))
        profile = cross_correlation(schema, project, max_lag=2)
        assert -2 <= profile.best_lag <= 2

    def test_constant_series_zero_correlation(self):
        profile = cross_correlation(hb([3, 3, 3]), hb([1, 5, 9]))
        assert profile.best_correlation == 0.0

    def test_correlation_at_and_window(self):
        profile = cross_correlation(hb([1, 2, 3]), hb([1, 2, 3]), max_lag=1)
        assert profile.correlation_at(0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            profile.correlation_at(5)

    def test_negative_max_lag_rejected(self):
        with pytest.raises(ValueError):
            cross_correlation(hb([1]), hb([1]), max_lag=-1)

    def test_schema_leads_helper(self):
        schema = hb([9, 0, 0, 7, 0, 0, 5, 0, 0, 0])
        echo = hb([0, 0, 9, 0, 0, 7, 0, 0, 5, 0])
        # schema activity precedes its 2-month echo: schema leads
        assert schema_leads(schema, echo)
        # and the mirrored pair does not
        assert not schema_leads(echo, schema)
