"""Acceptance tests for the observability layer on a real study run.

The ISSUE contract: a fully-traced study (``--trace --log-json
--manifest``) must produce (a) a span tree covering generate / mine /
analyze with one per-project span each — including those built in
worker processes — (b) a JSONL event log that the schema validator
accepts line by line, and (c) a manifest carrying seed, jobs, stage
timings and the metric snapshot; and its measures output must be
byte-identical to an untraced run at the same seed, serial and
``jobs=4`` alike.

A scaled-down canonical corpus (~1/16th) keeps the three study passes
fast while still crossing a real process boundary.
"""

import json
from dataclasses import replace

import pytest

from repro.analysis import run_study
from repro.cli import main
from repro.corpus import generate_corpus
from repro.corpus.profiles import CANONICAL_PROFILES
from repro.io import export_measures_csv
from repro.obs import (
    ObsSession,
    chrome_trace,
    configure_tracing,
    folded_stacks,
    get_progress,
    prometheus_text,
    reset_metrics,
    reset_progress,
    reset_recorder,
    validate_event_log,
    validate_prometheus_text,
)

SCALE = 16
SEED = 97_531


def _reset_obs():
    configure_tracing(False)
    reset_recorder()
    reset_metrics()
    reset_progress()


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    _reset_obs()


def _small_corpus():
    profiles = tuple(
        replace(profile, count=max(1, round(profile.count / SCALE)))
        for profile in CANONICAL_PROFILES
    )
    return generate_corpus(seed=SEED, profiles=profiles)


def _csv_bytes(study, path):
    export_measures_csv(study, path)
    return path.read_bytes()


def _span_names(spans):
    names = []
    for span in spans:
        names.append(span["name"])
        names.extend(_span_names(span.get("children", ())))
    return names


def _find_span(spans, name):
    for span in spans:
        if span["name"] == name:
            return span
        found = _find_span(span.get("children", ()), name)
        if found is not None:
            return found
    return None


@pytest.fixture(scope="module")
def baseline_csv(tmp_path_factory):
    """Measures bytes of the untraced serial run — the ground truth."""
    _reset_obs()
    study = run_study(_small_corpus())
    return _csv_bytes(study, tmp_path_factory.mktemp("base") / "m.csv")


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """One fully-traced ``jobs=4`` run with every artifact written."""
    _reset_obs()
    tmp = tmp_path_factory.mktemp("traced")
    session = ObsSession(
        command="study",
        trace_path=tmp / "trace.json",
        log_path=tmp / "events.jsonl",
        manifest_path=tmp / "manifest.json",
        progress=True,
    )
    session.seed = SEED
    session.jobs = 4
    # heartbeat on every completion so the small corpus still
    # exercises the progress path deterministically
    get_progress().interval = 0.0
    corpus = _small_corpus()
    study = run_study(corpus, jobs=4)
    session.study = study
    session.finalize(status="ok")
    return {
        "dir": tmp,
        "corpus_size": len(corpus),
        "study": study,
        "csv": _csv_bytes(study, tmp / "m.csv"),
        "trace": json.loads((tmp / "trace.json").read_text()),
        "manifest": json.loads((tmp / "manifest.json").read_text()),
    }


class TestResultsUnchanged:
    def test_traced_parallel_measures_byte_identical(
        self, baseline_csv, traced
    ):
        assert traced["csv"] == baseline_csv

    def test_traced_serial_measures_byte_identical(
        self, baseline_csv, tmp_path
    ):
        session = ObsSession(
            command="study",
            trace_path=tmp_path / "trace.json",
            log_path=tmp_path / "events.jsonl",
            progress=True,
        )
        get_progress().interval = 0.0
        study = run_study(_small_corpus())
        session.study = study
        session.finalize(status="ok")
        assert _csv_bytes(study, tmp_path / "m.csv") == baseline_csv

    def test_observability_fields_do_not_affect_equality(self, traced):
        untraced = run_study(_small_corpus(), jobs=4)
        assert untraced == traced["study"]


class TestSpanTree:
    def test_covers_generate_mine_analyze(self, traced):
        names = _span_names(traced["trace"]["spans"])
        for required in ("generate", "study", "mine_analyze",
                         "mine", "analyze"):
            assert required in names, f"span {required!r} missing"

    def test_one_project_span_per_corpus_project(self, traced):
        names = _span_names(traced["trace"]["spans"])
        assert names.count("project") == traced["corpus_size"]
        assert names.count("generate_project") == traced["corpus_size"]

    def test_worker_spans_reattach_under_the_dispatching_span(self, traced):
        dispatch = _find_span(traced["trace"]["spans"], "mine_analyze")
        assert dispatch is not None
        children = dispatch["children"]
        assert len(children) == traced["corpus_size"]
        for project_span in children:
            assert project_span["name"] == "project"
            assert project_span["attributes"].get("project")
            child_names = [c["name"] for c in project_span["children"]]
            assert child_names == ["mine", "analyze"]

    def test_mine_spans_carry_history_attributes(self, traced):
        mine = _find_span(traced["trace"]["spans"], "mine")
        assert mine["attributes"]["versions"] > 0
        assert mine["attributes"]["months"] > 0


class TestEventLog:
    def test_every_line_validates(self, traced):
        count, problems = validate_event_log(traced["dir"] / "events.jsonl")
        assert problems == []
        assert count > 0

    def test_project_spans_logged_once_each(self, traced):
        lines = (traced["dir"] / "events.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        project_closes = [
            r for r in records
            if r["event"] == "span" and r["name"] == "project"
        ]
        assert len(project_closes) == traced["corpus_size"]

    def test_log_ends_with_the_run_marker(self, traced):
        lines = (traced["dir"] / "events.jsonl").read_text().splitlines()
        last = json.loads(lines[-1])
        assert last["event"] == "run"
        assert last["command"] == "study"
        assert last["status"] == "ok"


class TestProgress:
    def _heartbeats(self, traced):
        lines = (traced["dir"] / "events.jsonl").read_text().splitlines()
        return [
            r for r in map(json.loads, lines) if r["event"] == "progress"
        ]

    def test_both_fanout_stages_heartbeat(self, traced):
        stages = {r["stage"] for r in self._heartbeats(traced)}
        assert stages == {"generate", "mine_analyze"}

    def test_final_heartbeat_reaches_the_corpus_size(self, traced):
        for stage in ("generate", "mine_analyze"):
            finals = [
                r for r in self._heartbeats(traced) if r["stage"] == stage
            ]
            assert finals[-1]["done"] == traced["corpus_size"]
            assert finals[-1]["total"] == traced["corpus_size"]
            assert finals[-1]["percent"] == 100.0

    def test_done_counts_are_monotonic(self, traced):
        for stage in ("generate", "mine_analyze"):
            dones = [
                r["done"] for r in self._heartbeats(traced)
                if r["stage"] == stage
            ]
            assert dones == sorted(dones)
            assert len(set(dones)) == len(dones)  # no duplicate emits

    def test_mine_heartbeats_carry_slowest_projects(self, traced):
        finals = [
            r for r in self._heartbeats(traced)
            if r["stage"] == "mine_analyze"
        ]
        slowest = finals[-1]["slowest"]
        assert 0 < len(slowest) <= 3
        assert all(s["name"] and s["seconds"] >= 0 for s in slowest)


class TestExporters:
    def test_chrome_export_covers_every_span(self, traced):
        doc = chrome_trace(traced["trace"])
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(complete) == len(_span_names(traced["trace"]["spans"]))

    def test_chrome_export_has_worker_lanes(self, traced):
        doc = chrome_trace(traced["trace"])
        worker_lanes = {
            e["tid"] for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "project"
        }
        assert worker_lanes and 0 not in worker_lanes

    def test_prometheus_export_passes_the_validator(self, traced):
        page = prometheus_text(traced["manifest"]["metrics"])
        assert validate_prometheus_text(page) == []
        assert "repro_projects_mined_total" in page

    def test_folded_stacks_cover_the_hot_path(self, traced):
        stacks = folded_stacks(traced["trace"])
        assert "study;mine_analyze;project;mine " in stacks


class TestManifest:
    def test_carries_seed_jobs_timings_metrics(self, traced):
        manifest = traced["manifest"]
        assert manifest["seed"] == SEED
        assert manifest["jobs"] == 4
        assert manifest["status"] == "ok"
        stages = manifest["timings"]["stages"]
        assert stages["mine"] > 0
        assert stages["analyze"] > 0
        assert stages["total"] > 0
        counters = manifest["metrics"]["counters"]
        assert counters["projects.mined"] == traced["corpus_size"]
        assert counters["versions.parsed"] > 0
        assert any(key.startswith("changes.") for key in counters)
        assert "parse_cache.misses" in counters
        assert "diff.seconds" in manifest["metrics"]["histograms"]

    def test_carries_the_host_environment(self, traced):
        environment = traced["manifest"]["environment"]
        assert environment["hostname"]
        assert environment["platform"]
        assert environment["cpu_count"] >= 1

    def test_outputs_point_at_the_artifacts(self, traced):
        outputs = traced["manifest"]["outputs"]
        assert outputs["trace"].endswith("trace.json")
        assert outputs["events"].endswith("events.jsonl")

    def test_round_trips_through_json(self, traced):
        manifest = traced["manifest"]
        assert json.loads(json.dumps(manifest)) == manifest


class TestTraceViewCommand:
    def test_renders_the_span_tree(self, traced, capsys):
        assert main(
            ["trace-view", str(traced["dir"] / "trace.json")]
        ) == 0
        out = capsys.readouterr().out
        assert "study" in out
        assert "project" in out
        assert "mine_analyze" in out

    def test_depth_limits_the_output(self, traced, capsys):
        assert main(
            ["trace-view", str(traced["dir"] / "trace.json"),
             "--depth", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "study" in out
        assert "mine_analyze" not in out

    def test_sort_by_self_time_reorders_siblings(self, traced, capsys):
        assert main(
            ["trace-view", str(traced["dir"] / "trace.json"),
             "--sort", "self", "--depth", "2"]
        ) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines()[1:] if l.strip()]
        # with --sort self the hottest root comes first, and project
        # rows inside mine_analyze are ordered by descending self time
        assert lines, "no spans rendered"

    def test_min_ms_prunes_fast_subtrees(self, traced, capsys):
        assert main(
            ["trace-view", str(traced["dir"] / "trace.json"),
             "--min-ms", "1e9"]
        ) == 0
        out = capsys.readouterr().out
        assert "project" not in out  # everything pruned, header remains
        assert out.splitlines()[0].startswith("span")

    def test_bad_sort_rejected_by_the_parser(self, traced):
        with pytest.raises(SystemExit):
            main(["trace-view", str(traced["dir"] / "trace.json"),
                  "--sort", "alphabetical"])

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace-view", str(tmp_path / "nope.json")]) == 1
        assert "no such trace file" in capsys.readouterr().err

    def test_invalid_json_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["trace-view", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err
