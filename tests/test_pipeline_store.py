"""Tests for the pluggable artifact stores and their shared file I/O."""

import os
import pickle

import pytest

from repro.obs.events import get_recorder, reset_recorder
from repro.pipeline.store import (
    ARTIFACT_FORMAT,
    STORE_DIR_ENV,
    DirStore,
    MemoryStore,
    StoreStats,
    atomic_write_pickle,
    configure_store,
    get_store,
    read_pickle,
)


@pytest.fixture(autouse=True)
def _fresh_store_state():
    reset_recorder()
    yield
    configure_store(None)
    reset_recorder()


def _codes() -> list[str]:
    return [record["code"] for record in get_recorder().warnings]


class TestAtomicPickleIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "obj.pkl"
        atomic_write_pickle(path, {"a": [1, 2, 3]})
        assert read_pickle(path) == {"a": [1, 2, 3]}

    def test_no_tmp_litter(self, tmp_path):
        atomic_write_pickle(tmp_path / "obj.pkl", 42)
        assert [p.name for p in tmp_path.iterdir()] == ["obj.pkl"]

    def test_read_missing_is_none(self, tmp_path):
        assert read_pickle(tmp_path / "absent.pkl") is None

    def test_read_garbage_is_none(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"this is not a pickle")
        assert read_pickle(path) is None

    def test_write_to_unwritable_dir_raises(self, tmp_path):
        missing = tmp_path / "no" / "such" / "dir" / "x.pkl"
        with pytest.raises(OSError):
            atomic_write_pickle(missing, 1)


class TestStoreStats:
    def test_arithmetic(self):
        a = StoreStats(hits=3, misses=1, writes=2, corrupt=0)
        b = StoreStats(hits=1, misses=1, writes=0, corrupt=1)
        assert (a + b).hits == 4
        assert (a - b).misses == 0
        assert a.lookups == 4
        assert a.hit_rate == 0.75

    def test_as_dict(self):
        stats = StoreStats(hits=1, misses=3)
        assert stats.as_dict() == {
            "hits": 1, "misses": 3, "writes": 0, "corrupt": 0,
            "hit_rate": 0.25,
        }

    def test_empty_hit_rate_is_zero(self):
        assert StoreStats().hit_rate == 0.0


class TestMemoryStore:
    def test_round_trip_returns_same_object(self):
        store = MemoryStore()
        payload = {"rows": [1, 2]}
        store.put("k1", payload, meta={"stage": "analyze"})
        artifact = store.get("k1")
        assert artifact.payload is payload
        assert artifact.meta == {"stage": "analyze"}

    def test_stats_count_hits_and_misses(self):
        store = MemoryStore()
        assert store.get("absent") is None
        store.put("k", 1)
        store.get("k")
        assert store.stats == StoreStats(hits=1, misses=1, writes=1)

    def test_contains_does_not_count(self):
        store = MemoryStore()
        store.put("k", 1)
        assert store.contains("k")
        assert not store.contains("absent")
        assert store.stats.lookups == 0

    def test_delete_and_clear(self):
        store = MemoryStore()
        store.put("a", 1)
        store.put("b", 2)
        assert store.delete("a")
        assert not store.delete("a")
        assert store.keys() == ["b"]
        assert store.clear() == 1
        assert len(store) == 0


class TestDirStore:
    def test_round_trip_across_instances(self, tmp_path):
        DirStore(tmp_path).put("a" * 64, {"x": 1}, meta={"stage": "mine"})
        artifact = DirStore(tmp_path).get("a" * 64)
        assert artifact.payload == {"x": 1}
        assert artifact.meta["stage"] == "mine"

    def test_layout_shards_by_key_prefix(self, tmp_path):
        key = "ab" + "0" * 62
        DirStore(tmp_path).put(key, 1)
        assert (tmp_path / "objects" / "ab" / f"{key}.pkl").exists()

    def test_size_of_and_keys(self, tmp_path):
        store = DirStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, list(range(100)))
        assert store.size_of(key) > 100
        assert store.keys() == [key]
        assert store.size_of("absent") is None

    def test_delete_removes_the_file(self, tmp_path):
        store = DirStore(tmp_path)
        key = "ef" + "0" * 62
        store.put(key, 1)
        assert store.delete(key)
        assert not store.contains(key)
        assert not store.delete(key)

    def test_truncated_entry_warns_and_recomputes(self, tmp_path):
        store = DirStore(tmp_path)
        key = "11" + "0" * 62
        store.put(key, {"x": 1})
        path = tmp_path / "objects" / "11" / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        fresh = DirStore(tmp_path)
        assert fresh.get(key) is None  # a miss, never bad bytes
        assert _codes() == ["store-corrupt"]
        assert fresh.stats.corrupt == 1
        assert not path.exists()  # the poisoned entry is dropped

    def test_bitflip_fails_the_payload_digest(self, tmp_path):
        store = DirStore(tmp_path)
        key = "22" + "0" * 62
        store.put(key, {"x": 1})
        path = tmp_path / "objects" / "22" / f"{key}.pkl"
        envelope = pickle.loads(path.read_bytes())
        envelope["payload"] = envelope["payload"][:-1] + bytes(
            [envelope["payload"][-1] ^ 0xFF]
        )
        path.write_bytes(pickle.dumps(envelope))

        assert DirStore(tmp_path).get(key) is None
        assert _codes() == ["store-corrupt"]

    def test_envelope_header_mismatch_is_corrupt(self, tmp_path):
        store = DirStore(tmp_path)
        key = "33" + "0" * 62
        path = tmp_path / "objects" / "33" / f"{key}.pkl"
        path.parent.mkdir(parents=True)
        payload = pickle.dumps({"x": 1})
        import hashlib

        path.write_bytes(pickle.dumps({
            "format": ARTIFACT_FORMAT,
            "key": "not-the-same-key",
            "meta": {},
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }))
        assert store.get(key) is None
        assert _codes() == ["store-corrupt"]

    def test_racing_writers_never_produce_a_torn_read(self, tmp_path):
        # two processes sharding the same corpus can race a put() on the
        # same shard key; the atomic-rename envelope means readers see
        # one complete payload or the other, never a mixture
        import threading

        key = "44" + "0" * 62
        payloads = [
            {"writer": w, "rows": [w] * 200} for w in range(2)
        ]
        writers = [DirStore(tmp_path), DirStore(tmp_path)]
        start = threading.Barrier(3)
        observed: list[object] = []
        errors: list[BaseException] = []

        def write(index: int) -> None:
            try:
                start.wait()
                for _ in range(50):
                    writers[index].put(
                        key, payloads[index], meta={"stage": "mine"}
                    )
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        done = threading.Event()

        def read() -> None:
            try:
                reader = DirStore(tmp_path)
                start.wait()
                while not done.is_set() or not observed:
                    artifact = reader.get(key)
                    if artifact is not None:
                        observed.append(artifact.payload)
            except BaseException as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(0,)),
            threading.Thread(target=write, args=(1,)),
            threading.Thread(target=read),
        ]
        for thread in threads:
            thread.start()
        for thread in threads[:2]:
            thread.join()
        done.set()
        threads[2].join()

        assert errors == []
        assert observed  # the reader saw at least one complete write
        assert all(payload in payloads for payload in observed)
        final = DirStore(tmp_path).get(key)
        assert final.payload in payloads
        # no reader ever tripped the corruption path
        assert "store-corrupt" not in _codes()
        assert all(store.stats.corrupt == 0 for store in writers)

    def test_unusable_root_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the store dir should be")
        store = DirStore(blocker)
        assert store.root is None
        assert _codes() == ["store-dir-degraded"]
        store.put("k", 1)
        assert store.get("k").payload == 1  # memory fallback still works


class TestGlobalStore:
    def test_default_is_memory(self):
        configure_store(None)
        assert get_store().kind == "memory"

    def test_configure_dir_exports_env(self, tmp_path):
        store = configure_store(tmp_path / "artifacts")
        assert store.kind == "dir"
        assert os.environ[STORE_DIR_ENV] == str(tmp_path / "artifacts")
        assert get_store() is store

    def test_env_var_enables_dir_store(self, tmp_path, monkeypatch):
        configure_store(None)
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "from-env"))
        import repro.pipeline.store as store_module

        monkeypatch.setattr(store_module, "_active", None)
        assert get_store().kind == "dir"
