"""Unit tests for the SMO algebra."""

import pytest

from repro.diff import diff_schemas
from repro.schema import Attribute, Schema, Table, normalize_type
from repro.smo import (
    AddAttribute,
    ChangeType,
    CreateTable,
    DropAttribute,
    DropTable,
    RenameAttribute,
    RenameTable,
    SetPrimaryKey,
    SMOError,
    apply_all,
    inverse_sequence,
)
from repro.sqlparser import parse_schema


def base_schema():
    return parse_schema(
        "CREATE TABLE users (id INT NOT NULL, name VARCHAR(40), "
        "PRIMARY KEY (id));"
        "CREATE TABLE posts (pid INT, body TEXT);"
    ).schema


def new_table(name="tags"):
    table = Table(name=name)
    table.add_attribute(Attribute("tid", normalize_type("int")))
    table.add_attribute(Attribute("label", normalize_type("varchar(20)")))
    table.primary_key = ("tid",)
    return table


class TestApplication:
    def test_create_table(self):
        schema = base_schema()
        CreateTable(new_table()).apply(schema)
        assert "tags" in schema

    def test_create_existing_fails(self):
        with pytest.raises(SMOError):
            CreateTable(new_table("users")).apply(base_schema())

    def test_drop_table(self):
        schema = base_schema()
        DropTable("posts").apply(schema)
        assert "posts" not in schema

    def test_drop_missing_fails(self):
        with pytest.raises(SMOError):
            DropTable("ghost").apply(base_schema())

    def test_rename_table(self):
        schema = base_schema()
        RenameTable("posts", "articles").apply(schema)
        assert "articles" in schema
        assert "posts" not in schema

    def test_rename_collision_fails(self):
        with pytest.raises(SMOError):
            RenameTable("posts", "users").apply(base_schema())

    def test_add_attribute(self):
        schema = base_schema()
        AddAttribute(
            "users", Attribute("age", normalize_type("int"))
        ).apply(schema)
        assert "age" in schema.table("users")

    def test_add_duplicate_fails(self):
        with pytest.raises(SMOError):
            AddAttribute(
                "users", Attribute("NAME", normalize_type("int"))
            ).apply(base_schema())

    def test_drop_attribute(self):
        schema = base_schema()
        DropAttribute("users", "name").apply(schema)
        assert "name" not in schema.table("users")

    def test_drop_last_attribute_fails(self):
        schema = parse_schema("CREATE TABLE t (only_col INT);").schema
        with pytest.raises(SMOError):
            DropAttribute("t", "only_col").apply(schema)

    def test_rename_attribute_updates_pk(self):
        schema = base_schema()
        RenameAttribute("users", "id", "uid").apply(schema)
        assert schema.table("users").primary_key == ("uid",)

    def test_change_type(self):
        schema = base_schema()
        ChangeType("users", "id", normalize_type("bigint")).apply(schema)
        assert schema.table("users").attribute("id").data_type.family == (
            "bigint"
        )

    def test_change_type_accepts_string(self):
        schema = base_schema()
        ChangeType("users", "id", "bigint").apply(schema)
        assert schema.table("users").attribute("id").data_type.family == (
            "bigint"
        )

    def test_set_primary_key(self):
        schema = base_schema()
        SetPrimaryKey("posts", ("pid",)).apply(schema)
        assert schema.table("posts").primary_key == ("pid",)

    def test_set_pk_unknown_column_fails(self):
        with pytest.raises(SMOError):
            SetPrimaryKey("posts", ("ghost",)).apply(base_schema())

    def test_applied_to_leaves_original_untouched(self):
        schema = base_schema()
        modified = DropTable("posts").applied_to(schema)
        assert "posts" in schema
        assert "posts" not in modified


class TestInverses:
    SMOS = [
        CreateTable(new_table()),
        DropTable("posts"),
        RenameTable("posts", "articles"),
        AddAttribute("users", Attribute("age", normalize_type("int"))),
        DropAttribute("users", "name"),
        RenameAttribute("users", "name", "full_name"),
        ChangeType("users", "id", normalize_type("bigint")),
        SetPrimaryKey("posts", ("pid",)),
    ]

    @pytest.mark.parametrize("smo", SMOS, ids=lambda s: type(s).__name__)
    def test_inverse_undoes(self, smo):
        schema = base_schema()
        inverse = smo.inverse(schema)
        after = smo.applied_to(schema)
        restored = inverse.applied_to(after)
        assert diff_schemas(schema, restored).is_identical
        # PK restoration checked explicitly (diff ignores equal PKs)
        for table in schema:
            assert restored.table(table.name).primary_key == (
                table.primary_key
            )

    def test_inverse_sequence_undoes_chain(self):
        schema = base_schema()
        smos = [
            AddAttribute("users", Attribute("age", normalize_type("int"))),
            ChangeType("users", "age", normalize_type("bigint")),
            CreateTable(new_table()),
            DropAttribute("users", "name"),
        ]
        forward = apply_all(schema, smos)
        undo = inverse_sequence(schema, smos)
        restored = apply_all(forward, undo)
        assert diff_schemas(schema, restored).is_identical


class TestSQLEmission:
    @pytest.mark.parametrize(
        "smo",
        [
            CreateTable(new_table()),
            DropTable("posts"),
            RenameTable("posts", "articles"),
            AddAttribute(
                "users",
                Attribute("age", normalize_type("int"), nullable=False),
            ),
            DropAttribute("users", "name"),
            RenameAttribute("users", "name", "full_name"),
            ChangeType("users", "id", normalize_type("bigint")),
        ],
        ids=lambda s: type(s).__name__,
    )
    def test_emitted_sql_reproduces_application(self, smo):
        """Applying the SMO and parsing its DDL must agree."""
        schema = base_schema()
        via_apply = smo.applied_to(schema)
        script = schema.render_sql() + "\n" + smo.render_sql()
        via_sql = parse_schema(script).schema
        assert diff_schemas(via_apply, via_sql).is_identical

    def test_mysql_change_type_uses_modify(self):
        sql = ChangeType("t", "a", normalize_type("bigint")).render_sql(
            "mysql"
        )
        assert "MODIFY COLUMN" in sql

    def test_postgres_change_type_uses_alter_type(self):
        sql = ChangeType("t", "a", normalize_type("bigint")).render_sql(
            "postgres"
        )
        assert "ALTER COLUMN" in sql and "TYPE" in sql
