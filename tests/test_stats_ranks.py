"""Unit tests for the rank-based statistics (cross-checked against scipy)."""

import random

import pytest
import scipy.stats

from repro.stats import (
    kendall_tau_b,
    kruskal_wallis,
    median,
    rank_with_ties,
    shapiro_wilk,
)


class TestRankWithTies:
    def test_no_ties(self):
        assert rank_with_ties([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_ties_share_mean_rank(self):
        assert rank_with_ties([5, 5, 1]) == [2.5, 2.5, 1.0]

    def test_all_equal(self):
        assert rank_with_ties([7, 7, 7]) == [2.0, 2.0, 2.0]

    def test_empty(self):
        assert rank_with_ties([]) == []


class TestKendallTau:
    def test_perfect_agreement(self):
        result = kendall_tau_b([1, 2, 3, 4], [10, 20, 30, 40])
        assert result.statistic == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        result = kendall_tau_b([1, 2, 3, 4], [4, 3, 2, 1])
        assert result.statistic == pytest.approx(-1.0)

    def test_matches_scipy_no_ties(self):
        rng = random.Random(1)
        x = [rng.random() for _ in range(60)]
        y = [rng.random() for _ in range(60)]
        ours = kendall_tau_b(x, y)
        theirs = scipy.stats.kendalltau(x, y)
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-9)

    def test_matches_scipy_with_ties(self):
        rng = random.Random(2)
        x = [rng.randint(0, 5) for _ in range(80)]
        y = [rng.randint(0, 5) for _ in range(80)]
        ours = kendall_tau_b(x, y)
        theirs = scipy.stats.kendalltau(x, y)
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-9)

    def test_p_value_small_for_strong_correlation(self):
        x = list(range(50))
        y = [v + 0.01 for v in x]
        assert kendall_tau_b(x, y).p_value < 1e-6

    def test_p_value_large_for_noise(self):
        rng = random.Random(3)
        x = [rng.random() for _ in range(100)]
        y = [rng.random() for _ in range(100)]
        assert kendall_tau_b(x, y).p_value > 0.01

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau_b([1], [1, 2])

    def test_degenerate_constant_series(self):
        result = kendall_tau_b([1, 1, 1], [1, 2, 3])
        assert result.p_value == 1.0


class TestKruskalWallis:
    def test_matches_scipy(self):
        rng = random.Random(4)
        groups = [
            [rng.gauss(mu, 1) for _ in range(20)] for mu in (0, 0.5, 2.0)
        ]
        ours = kruskal_wallis(groups)
        theirs = scipy.stats.kruskal(*groups)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_matches_scipy_with_ties(self):
        rng = random.Random(5)
        groups = [
            [rng.randint(0, 4) for _ in range(25)] for _ in range(4)
        ]
        ours = kruskal_wallis(groups)
        theirs = scipy.stats.kruskal(*groups)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)

    def test_detects_separated_groups(self):
        groups = [[1, 2, 3, 4, 5], [11, 12, 13, 14, 15]]
        assert kruskal_wallis(groups).p_value < 0.01

    def test_identical_groups_not_significant(self):
        rng = random.Random(6)
        base = [rng.random() for _ in range(30)]
        assert kruskal_wallis([base, list(base)]).p_value > 0.5

    def test_empty_groups_dropped(self):
        result = kruskal_wallis([[1, 2, 3], [], [4, 5, 6]])
        assert result.details["df"] == 1

    def test_single_group_rejected(self):
        with pytest.raises(ValueError):
            kruskal_wallis([[1, 2, 3]])

    def test_group_medians_in_details(self):
        result = kruskal_wallis([[1, 2, 3], [10, 20, 30]])
        assert result.details["group_medians"] == [2, 20]


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even_interpolates(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_single(self):
        assert median([9]) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])


class TestShapiroWilk:
    def test_rejects_uniform_large_sample(self):
        rng = random.Random(7)
        data = [rng.random() for _ in range(200)]
        assert shapiro_wilk(data).p_value < 0.01

    def test_accepts_normal_sample(self):
        rng = random.Random(8)
        data = [rng.gauss(0, 1) for _ in range(100)]
        assert shapiro_wilk(data).p_value > 0.001

    def test_too_few_observations(self):
        with pytest.raises(ValueError):
            shapiro_wilk([1.0, 2.0])
