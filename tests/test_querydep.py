"""Unit tests for the change-impact extension."""

import pytest

from repro.diff import diff_ddl
from repro.querydep import (
    EmbeddedQuery,
    Impact,
    analyze_impact,
    analyze_query,
    dependency_graph,
    extract_from_files,
    extract_queries,
    queries_touching,
)


class TestExtractQueries:
    def test_double_quoted_select(self):
        source = 'db.query("SELECT id FROM users");\n'
        queries = extract_queries(source, file="app.js")
        assert len(queries) == 1
        assert queries[0].kind == "SELECT"
        assert queries[0].file == "app.js"

    def test_single_quoted_and_line_numbers(self):
        source = "x = 1\ny = 2\nq = 'DELETE FROM posts WHERE id = ?'\n"
        queries = extract_queries(source)
        assert queries[0].line == 3
        assert queries[0].kind == "DELETE"

    def test_triple_quoted_multiline(self):
        source = 'q = """SELECT a,\n b FROM t"""\n'
        queries = extract_queries(source)
        assert len(queries) == 1
        assert "FROM t" in queries[0].text

    def test_non_sql_strings_ignored(self):
        source = 'msg = "hello SELECT-ish but not really"\npath = "a/b"\n'
        assert extract_queries(source) == []

    def test_insert_update(self):
        source = (
            "a = 'INSERT INTO t (x) VALUES (1)'\n"
            "b = 'UPDATE t SET x = 2'\n"
        )
        kinds = [q.kind for q in extract_queries(source)]
        assert kinds == ["INSERT", "UPDATE"]

    def test_extract_from_files_sorted(self):
        files = {
            "b.py": "q = 'SELECT 1 FROM t'",
            "a.py": "q = 'SELECT 2 FROM s'",
        }
        queries = extract_from_files(files)
        assert [q.file for q in queries] == ["a.py", "b.py"]


class TestAnalyzeQuery:
    def test_simple_select(self):
        deps = analyze_query("SELECT id, name FROM users WHERE age > 10")
        assert deps.tables == {"users"}
        assert ("users", "id") in deps.columns
        assert ("users", "name") in deps.columns
        assert ("users", "age") in deps.columns

    def test_qualified_columns_with_alias(self):
        deps = analyze_query(
            "SELECT u.name, p.body FROM users u "
            "JOIN posts p ON u.id = p.user_id"
        )
        assert deps.tables == {"users", "posts"}
        assert ("users", "name") in deps.columns
        assert ("posts", "body") in deps.columns
        assert ("posts", "user_id") in deps.columns

    def test_as_alias(self):
        deps = analyze_query("SELECT a.x FROM items AS a")
        assert ("items", "x") in deps.columns

    def test_select_star(self):
        deps = analyze_query("SELECT * FROM users")
        assert deps.star_tables == {"users"}

    def test_qualified_star(self):
        deps = analyze_query(
            "SELECT u.* FROM users u JOIN posts p ON u.id = p.uid"
        )
        assert deps.star_tables == {"users"}
        assert "posts" not in deps.star_tables

    def test_multiplication_is_not_star(self):
        deps = analyze_query("SELECT price FROM t WHERE a * 2 > 4")
        assert not deps.star_tables

    def test_insert_columns(self):
        deps = analyze_query("INSERT INTO logs (level, msg) VALUES (1, 'x')")
        assert deps.tables == {"logs"}
        assert ("logs", "level") in deps.columns

    def test_update_set(self):
        deps = analyze_query("UPDATE users SET name = 'x' WHERE id = 3")
        assert deps.tables == {"users"}
        assert ("users", "name") in deps.columns

    def test_unqualified_in_join_is_ambiguous(self):
        deps = analyze_query(
            "SELECT name FROM users u JOIN posts p ON u.id = p.uid"
        )
        assert (None, "name") in deps.columns
        assert deps.references_column("users", "name")
        assert deps.references_column("posts", "name")

    def test_function_calls_not_columns(self):
        deps = analyze_query("SELECT COUNT(id) FROM t")
        assert ("t", "id") in deps.columns
        assert not any(col == "count" for _, col in deps.columns)

    def test_references_table_case_insensitive(self):
        deps = analyze_query("SELECT x FROM Users")
        assert deps.references_table("USERS")


OLD = """
CREATE TABLE users (id INT, name VARCHAR(40), email TEXT);
CREATE TABLE posts (pid INT, body TEXT, author INT);
CREATE TABLE sessions (sid INT, token TEXT);
"""


def query(text, file="app.py", line=1):
    return EmbeddedQuery(file=file, line=line, text=text)


class TestImpact:
    def test_dropped_table_breaks(self):
        new = OLD + "DROP TABLE sessions;"
        report = analyze_impact(
            [query("SELECT token FROM sessions")], diff_ddl(OLD, new)
        )
        assert report.impacts[0].impact is Impact.BREAKS

    def test_dropped_column_breaks(self):
        new = OLD + "ALTER TABLE users DROP COLUMN email;"
        report = analyze_impact(
            [query("SELECT email FROM users")], diff_ddl(OLD, new)
        )
        assert report.impacts[0].impact is Impact.BREAKS

    def test_type_change_is_at_risk(self):
        new = OLD + "ALTER TABLE users MODIFY COLUMN name VARCHAR(10);"
        report = analyze_impact(
            [query("SELECT name FROM users")], diff_ddl(OLD, new)
        )
        assert report.impacts[0].impact is Impact.AT_RISK

    def test_select_star_drifts_on_injection(self):
        new = OLD + "ALTER TABLE users ADD COLUMN age INT;"
        report = analyze_impact(
            [query("SELECT * FROM users")], diff_ddl(OLD, new)
        )
        assert report.impacts[0].impact is Impact.DRIFTS

    def test_unrelated_query_unaffected(self):
        new = OLD + "ALTER TABLE users ADD COLUMN age INT;"
        report = analyze_impact(
            [query("SELECT body FROM posts")], diff_ddl(OLD, new)
        )
        assert report.impacts[0].impact is Impact.UNAFFECTED

    def test_report_sorted_worst_first(self):
        new = OLD + (
            "DROP TABLE sessions;"
            "ALTER TABLE users ADD COLUMN age INT;"
        )
        report = analyze_impact(
            [
                query("SELECT body FROM posts", line=1),
                query("SELECT * FROM users", line=2),
                query("SELECT token FROM sessions", line=3),
            ],
            diff_ddl(OLD, new),
        )
        impacts = [qi.impact for qi in report]
        assert impacts == [Impact.BREAKS, Impact.DRIFTS, Impact.UNAFFECTED]
        assert report.affected_count == 2

    def test_reasons_are_informative(self):
        new = OLD + "ALTER TABLE users DROP COLUMN email;"
        report = analyze_impact(
            [query("SELECT email FROM users")], diff_ddl(OLD, new)
        )
        assert "users.email" in report.impacts[0].reasons[0]


class TestDependencyGraph:
    def test_nodes_and_edges(self):
        graph = dependency_graph(
            [query("SELECT u.name FROM users u", line=4)]
        )
        assert graph.nodes["table:users"]["kind"] == "table"
        assert graph.has_edge("query:app.py:4", "column:users.name")
        assert graph.has_edge("column:users.name", "table:users")

    def test_queries_touching_table(self):
        graph = dependency_graph(
            [
                query("SELECT u.name FROM users u", line=1),
                query("SELECT body FROM posts", line=2),
            ]
        )
        hits = queries_touching(graph, "table:users")
        assert hits == ["query:app.py:1"]

    def test_queries_touching_missing_node(self):
        graph = dependency_graph([])
        assert queries_touching(graph, "table:ghost") == []


class TestPositionalInsert:
    def test_detected(self):
        deps = analyze_query("INSERT INTO logs VALUES (1, 'x')")
        assert deps.positional_insert_tables == {"logs"}

    def test_column_list_not_positional(self):
        deps = analyze_query("INSERT INTO logs (a, b) VALUES (1, 2)")
        assert deps.positional_insert_tables == set()

    def test_qualified_target(self):
        deps = analyze_query("INSERT INTO public.logs VALUES (1)")
        assert "logs" in deps.positional_insert_tables

    def test_insert_select_positional(self):
        deps = analyze_query("INSERT INTO archive SELECT * FROM logs")
        assert "archive" in deps.positional_insert_tables

    def test_injection_breaks_positional_insert(self):
        new = OLD + "ALTER TABLE sessions ADD COLUMN ip TEXT;"
        report = analyze_impact(
            [query("INSERT INTO sessions VALUES (1, 'tok')")],
            diff_ddl(OLD, new),
        )
        assert report.impacts[0].impact is Impact.BREAKS
        assert "arity" in report.impacts[0].reasons[0]

    def test_ejection_breaks_positional_insert(self):
        new = OLD + "ALTER TABLE sessions DROP COLUMN token;"
        report = analyze_impact(
            [query("INSERT INTO sessions VALUES (1, 'tok')")],
            diff_ddl(OLD, new),
        )
        assert report.impacts[0].impact is Impact.BREAKS

    def test_column_list_insert_survives_injection(self):
        new = OLD + "ALTER TABLE sessions ADD COLUMN ip TEXT;"
        report = analyze_impact(
            [query("INSERT INTO sessions (sid, token) VALUES (1, 'x')")],
            diff_ddl(OLD, new),
        )
        assert report.impacts[0].impact is Impact.UNAFFECTED
