"""Unit tests for the self-contained HTML report."""

import pytest

from repro.analysis import canonical_study
from repro.report import build_html_report, write_html_report


@pytest.fixture(scope="module")
def html(tmp_path_factory):
    study = canonical_study()
    return build_html_report(study, title="Demo <Report>")


class TestBuildHtmlReport:
    def test_is_a_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</body></html>")

    def test_title_is_escaped(self, html):
        assert "Demo &lt;Report&gt;" in html
        assert "<Report>" not in html

    def test_contains_inline_svgs(self, html):
        assert html.count("<svg") >= 4
        assert html.count("<svg") == html.count("</svg>")

    def test_no_external_references(self, html):
        assert "http://" not in html.replace(
            "http://www.w3.org/2000/svg", ""
        )
        assert "<script" not in html
        assert "<link" not in html

    def test_tables_balanced(self, html):
        assert html.count("<table>") == html.count("</table>")
        assert html.count("<table>") >= 3

    def test_sections_present(self, html):
        for heading in (
            "Headline numbers",
            "Synchronicity (Fig. 4)",
            "Life % of schema advance (Fig. 6)",
            "Attainment (Fig. 8)",
            "Per-taxon medians",
        ):
            assert heading in html

    def test_write_to_disk(self, tmp_path):
        study = canonical_study()
        path = write_html_report(study, tmp_path / "out" / "report.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")
