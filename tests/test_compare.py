"""Unit tests for study comparison."""

import pytest

from repro.analysis import canonical_study, compare_studies, run_study
from repro.corpus import generate_corpus, generate_scenario


@pytest.fixture(scope="module")
def observed():
    return canonical_study()


class TestCompareStudies:
    def test_self_comparison_shows_no_differences(self, observed):
        comparison = compare_studies(observed, observed)
        assert comparison.differing_measures == []
        for row in comparison.rows:
            assert row.median_a == row.median_b
            assert row.ks.p_value == pytest.approx(1.0)

    def test_same_mix_fresh_seed_mostly_agrees(self, observed):
        resampled = run_study(generate_corpus(seed=424242))
        comparison = compare_studies(
            observed, resampled, label_a="canonical", label_b="reseeded"
        )
        # distributions from the same generative process rarely differ
        assert len(comparison.differing_measures) <= 2, (
            comparison.render()
        )

    def test_counterfactual_mix_differs(self, observed):
        agile = run_study(generate_scenario("AGILE_WORLD"))
        comparison = compare_studies(
            observed, agile, label_a="observed", label_b="agile"
        )
        # the attainment distributions must shift under an agile mix
        assert "attainment_75" in comparison.differing_measures
        row = comparison.row("attainment_75")
        assert row.median_b > row.median_a  # agile attains later

    def test_row_lookup_and_render(self, observed):
        comparison = compare_studies(
            observed, observed, label_a="x", label_b="y"
        )
        assert comparison.row("sync_10").measure == "sync_10"
        with pytest.raises(KeyError):
            comparison.row("nope")
        text = comparison.render()
        assert "median x" in text
        assert "sync_10" in text

    def test_all_compared_measures_present(self, observed):
        comparison = compare_studies(observed, observed)
        names = {row.measure for row in comparison.rows}
        assert "advance_over_source" in names
        assert "schema_activity" in names
