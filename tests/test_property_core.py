"""Property-based tests (hypothesis) for the core data structures."""

import random

from hypothesis import given, settings, strategies as st

from repro.corpus import random_schema, sample_change_smos
from repro.diff import diff_schemas, initial_delta
from repro.heartbeat import Heartbeat, Month, is_monotone, time_progress
from repro.schema import normalize_type
from repro.smo import apply_all, inverse_sequence
from repro.sqlparser import parse_schema

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def schema_from_seed(seed, **kwargs):
    return random_schema(random.Random(seed), **kwargs)


class TestTypeNormalisation:
    @given(
        st.sampled_from(
            [
                "INT", "int4", "BIGINT", "VARCHAR(255)", "varchar(10)",
                "DECIMAL(10,2)", "TEXT", "BOOLEAN", "bool", "DATE",
                "TIMESTAMP", "timestamptz", "DOUBLE PRECISION",
                "ENUM('a','b')", "TEXT[]", "INT UNSIGNED", "SMALLINT",
                "CHAR(2)", "BLOB", "JSONB", "uuid",
            ]
        )
    )
    def test_render_normalize_is_idempotent(self, spelling):
        once = normalize_type(spelling)
        twice = normalize_type(once.render_sql())
        assert once == twice

    @given(st.integers(min_value=1, max_value=65535))
    def test_varchar_lengths_compare_by_value(self, n):
        assert normalize_type(f"VARCHAR({n})") == normalize_type(
            f"character varying({n})"
        )


class TestSchemaRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_render_parse_roundtrip(self, seed):
        schema = schema_from_seed(seed)
        reparsed = parse_schema(schema.render_sql()).schema
        assert diff_schemas(schema, reparsed).is_identical
        for table in schema:
            assert reparsed.table(table.name).primary_key == (
                table.primary_key
            )

    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_initial_delta_counts_every_attribute(self, seed):
        schema = schema_from_seed(seed)
        assert initial_delta(schema).total_activity == (
            schema.attribute_count
        )


class TestDiffLaws:
    @settings(max_examples=30, deadline=None)
    @given(seeds)
    def test_diff_self_is_empty(self, seed):
        schema = schema_from_seed(seed)
        assert diff_schemas(schema, schema).is_identical

    @settings(max_examples=30, deadline=None)
    @given(seeds, st.integers(min_value=1, max_value=20))
    def test_diff_is_antisymmetric(self, seed, magnitude):
        schema = schema_from_seed(seed)
        rng = random.Random(seed ^ 0xABCDEF)
        smos = sample_change_smos(schema, magnitude, rng, table_ops=True)
        evolved = apply_all(schema, smos)
        forward = diff_schemas(schema, evolved).breakdown
        backward = diff_schemas(evolved, schema).breakdown
        assert forward.born_with_table == backward.deleted_with_table
        assert forward.injected == backward.ejected
        assert forward.type_changed == backward.type_changed
        assert forward.pk_changed == backward.pk_changed
        assert forward.total == backward.total

    @settings(max_examples=30, deadline=None)
    @given(seeds, st.integers(min_value=1, max_value=20))
    def test_applying_smos_changes_exactly_what_diff_sees(
        self, seed, magnitude
    ):
        schema = schema_from_seed(seed)
        rng = random.Random(seed ^ 0x123456)
        smos = sample_change_smos(schema, magnitude, rng, table_ops=False)
        evolved = apply_all(schema, smos)
        delta = diff_schemas(schema, evolved)
        # intra-table ops on distinct targets: one unit each, except PK
        # moves which count two participation changes
        from repro.smo import SetPrimaryKey

        expected = sum(
            2 if isinstance(smo, SetPrimaryKey) else 1 for smo in smos
        )
        assert delta.total_activity == expected


class TestSMOInverses:
    @settings(max_examples=30, deadline=None)
    @given(seeds, st.integers(min_value=1, max_value=15))
    def test_inverse_sequence_restores_schema(self, seed, magnitude):
        schema = schema_from_seed(seed)
        rng = random.Random(seed ^ 0x777)
        smos = sample_change_smos(schema, magnitude, rng, table_ops=True)
        evolved = apply_all(schema, smos)
        restored = apply_all(evolved, inverse_sequence(schema, smos))
        assert diff_schemas(schema, restored).is_identical
        for table in schema:
            assert restored.table(table.name).primary_key == (
                table.primary_key
            )


class TestHeartbeatProperties:
    activity_lists = st.lists(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    )

    @given(activity_lists)
    def test_cumulative_fraction_is_monotone_and_ends_at_one(self, values):
        hb = Heartbeat(Month(2015, 1), values)
        if hb.total <= 0:
            return
        series = hb.cumulative_fraction()
        assert is_monotone(series)
        assert abs(series[-1] - 1.0) < 1e-9
        assert all(-1e-9 <= v <= 1 + 1e-9 for v in series)

    @given(activity_lists, st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=10))
    def test_alignment_preserves_total(self, values, pad_left, pad_right):
        hb = Heartbeat(Month(2015, 6), values)
        aligned = hb.aligned(
            hb.start.shift(-pad_left), hb.end.shift(pad_right)
        )
        assert aligned.total == hb.total
        assert len(aligned) == len(hb) + pad_left + pad_right

    @given(st.integers(min_value=1, max_value=500))
    def test_time_progress_properties(self, n):
        series = time_progress(n)
        assert len(series) == n
        assert is_monotone(series)
        assert series[-1] == 1.0
        assert series[0] > 0
