"""Unit tests for histogram bucketing."""

import pytest

from repro.stats import (
    Bucket,
    bucket_counts,
    bucket_index,
    buckets_from_edges,
    equal_buckets,
)


class TestBucket:
    def test_half_open_membership(self):
        bucket = Bucket(0.2, 0.4)
        assert 0.2 in bucket
        assert 0.39 in bucket
        assert 0.4 not in bucket

    def test_closed_high(self):
        bucket = Bucket(0.8, 1.0, closed_high=True)
        assert 1.0 in bucket

    def test_label(self):
        assert Bucket(0.2, 0.4).label == "0.2-0.4"
        assert Bucket(0.0, 1.0).label == "0-1"

    def test_pct_label(self):
        assert Bucket(0.0, 0.2).pct_label() == "[0%-20%)"
        assert Bucket(0.8, 1.0, closed_high=True).pct_label() == "[80%-100%]"


class TestEqualBuckets:
    def test_five_buckets_cover_unit(self):
        buckets = equal_buckets(5)
        assert len(buckets) == 5
        assert buckets[0].low == 0.0
        assert buckets[-1].high == 1.0
        assert buckets[-1].closed_high

    def test_every_value_in_exactly_one(self):
        buckets = equal_buckets(5)
        for value in [0.0, 0.1999, 0.2, 0.5, 0.799, 0.8, 0.99, 1.0]:
            homes = [b for b in buckets if value in b]
            assert len(homes) == 1

    def test_zero_buckets_rejected(self):
        with pytest.raises(ValueError):
            equal_buckets(0)


class TestBucketsFromEdges:
    def test_ten_ranges(self):
        buckets = buckets_from_edges([i / 10 for i in range(11)])
        assert len(buckets) == 10
        assert buckets[0].low == 0.0
        assert buckets[-1].closed_high

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            buckets_from_edges([0.0, 0.5, 0.2])

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            buckets_from_edges([0.0])


class TestBucketCounts:
    def test_counts(self):
        buckets = equal_buckets(2)
        counts, blanks = bucket_counts([0.1, 0.2, 0.6, 1.0], buckets)
        assert counts == [2, 2]
        assert blanks == 0

    def test_none_counted_as_blank(self):
        buckets = equal_buckets(2)
        counts, blanks = bucket_counts([0.1, None, None], buckets)
        assert counts == [1, 0]
        assert blanks == 2

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            bucket_counts([1.5], equal_buckets(2))

    def test_bucket_index(self):
        buckets = equal_buckets(4)
        assert bucket_index(buckets, 0.0) == 0
        assert bucket_index(buckets, 0.25) == 1
        assert bucket_index(buckets, 1.0) == 3
