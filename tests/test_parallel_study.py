"""Serial/parallel equivalence of the study engine.

The acceptance bar of the performance layer: ``run_study(corpus,
jobs=N)`` with N > 1 must produce exactly the rows, skip lists and
headline numbers of the serial path on the canonical seed, and the
parallel corpus generator must be bit-identical to the serial loop.
"""

import pytest

from repro.analysis import canonical_study, run_study
from repro.corpus import generate_corpus
from repro.perf.cache import CacheStats
from repro.perf.timing import StudyTimings


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus()


@pytest.fixture(scope="module")
def serial(corpus):
    return run_study(corpus, jobs=1)


class TestParallelEquivalence:
    def test_jobs4_rows_identical_on_canonical_seed(self, corpus, serial):
        parallel = run_study(corpus, jobs=4)
        assert parallel.projects == serial.projects
        assert parallel.skipped == serial.skipped

    def test_jobs4_headline_identical(self, corpus, serial):
        parallel = run_study(corpus, jobs=4)
        assert parallel.headline() == serial.headline()

    def test_serial_path_matches_canonical_study(self, serial):
        canonical = canonical_study()
        assert serial.projects == canonical.projects
        assert serial.skipped == canonical.skipped

    def test_parallel_corpus_generation_bit_identical(self, corpus):
        parallel = generate_corpus(jobs=2)
        assert [p.name for p in parallel] == [p.name for p in corpus]
        for a, b in zip(corpus, parallel):
            assert a.spec == b.spec
            assert a.git_log_text == b.git_log_text
            assert a.ddl_versions == b.ddl_versions


class TestTimings:
    def test_run_study_records_stage_breakdown(self, serial):
        stages = serial.timings.stages
        assert stages["mine"] > 0
        assert stages["analyze"] > 0
        assert stages["total"] >= stages["analyze"]
        assert serial.timings.jobs == 1

    def test_parse_cache_counters_flow_into_timings(self, serial):
        cache = serial.timings.cache
        assert cache.lookups > 0
        # every DDL version is looked up exactly once per study pass
        assert cache.hits + cache.misses == cache.lookups

    def test_canonical_study_records_generate_stage(self):
        study = canonical_study()
        assert study.timings.stages.get("generate", 0) > 0

    def test_timings_do_not_affect_result_equality(self, serial):
        other = run_study([], jobs=1)
        assert other.timings.stages != serial.timings.stages
        # equality of StudyResult compares rows, not wall-clock noise
        empty_a = run_study([], jobs=1)
        assert empty_a == other

    def test_render_and_as_dict(self):
        timings = StudyTimings(jobs=2)
        timings.record("mine", 1.25)
        timings.record("mine", 0.75)
        timings.record("custom", 0.1)
        payload = timings.as_dict()
        assert payload["jobs"] == 2
        assert payload["stages"]["mine"] == 2.0
        assert "custom" in payload["stages"]
        text = timings.render()
        assert "mine" in text and "parse cache" in text

    def test_timed_context_manager(self):
        timings = StudyTimings()
        with timings.timed("figures"):
            pass
        assert timings.stages["figures"] >= 0

    def test_ordered_stages_puts_extras_after_the_pipeline(self):
        timings = StudyTimings()
        for stage in ("zeta", "analyze", "alpha", "mine", "total"):
            timings.record(stage, 1.0)
        names = [name for name, _ in timings.ordered_stages()]
        # canonical pipeline order first, unknown stages sorted after
        assert names == ["mine", "analyze", "total", "alpha", "zeta"]

    def test_merge_sums_stages_and_cache_keeps_driver_jobs(self):
        driver = StudyTimings(jobs=4)
        driver.record("mine", 1.0)
        driver.merge_cache(CacheStats(hits=2, misses=1))
        worker = StudyTimings(jobs=1)
        worker.record("mine", 0.5)
        worker.record("figures", 0.25)
        worker.merge_cache(CacheStats(hits=1, misses=3, disk_hits=1))
        merged = driver.merge(worker)
        assert merged is driver  # chains
        assert driver.stages["mine"] == pytest.approx(1.5)
        assert driver.stages["figures"] == pytest.approx(0.25)
        assert driver.jobs == 4
        assert driver.cache == CacheStats(hits=3, misses=4, disk_hits=1)


class TestParallelObservability:
    """Satellite checks: cache counters and metrics across workers."""

    @pytest.fixture(scope="class")
    def parallel(self, corpus):
        return run_study(corpus, jobs=2)

    def test_parallel_cache_counters_feed_the_profile(self, parallel):
        # the previously-missing assertion: worker cache deltas must
        # reach the driver's --profile output when jobs > 1
        cache = parallel.timings.cache
        assert cache.lookups > 0
        assert cache.hits + cache.misses == cache.lookups
        text = parallel.timings.render()
        assert "hit rate" in text
        assert "summed worker seconds" in text

    def test_parallel_metrics_counters_match_serial(self, parallel, serial):
        def stable(study):
            # parse-cache splits depend on worker scheduling (each
            # worker warms its own memory layer); everything else is
            # deterministic
            return {
                name: value
                for name, value in study.metrics.counters.items()
                if not name.startswith("parse_cache.")
            }

        assert stable(parallel) == stable(serial)
        assert parallel.metrics.counters["projects.mined"] == 195

    def test_diff_latency_histogram_collected(self, serial):
        histogram = serial.metrics.histograms["diff.seconds"]
        assert histogram.count > 0
        assert histogram.mean > 0
