"""Corpus scale-out: `sized_profiles` allocation and large-N RNG identity.

The ``--projects N`` knob re-sizes the canonical 195-project taxa mix
to an absolute corpus size; the streaming sampler
(`iter_corpus_specs`) must draw the *same* spec sequence as the
materialised `corpus_specs` list at any N, and per-project generation
must stay deterministic from the spec alone — spot-checked at the
corners of a 10 000-project corpus, because a shard's content address
is derived from its spec and a drifting draw order would silently
re-key every downstream artifact.
"""

import pytest

from repro.corpus.generator import (
    corpus_specs,
    generate_project,
    iter_corpus_specs,
)
from repro.corpus.profiles import (
    CANONICAL_PROFILES,
    CANONICAL_SIZE,
    corpus_size,
    sized_profiles,
)


class TestSizedProfiles:
    @pytest.mark.parametrize(
        "total", [6, 7, 33, 195, 1000, 2000, 10_000, 100_000]
    )
    def test_counts_sum_exactly_with_every_taxon_kept(self, total):
        profiles = sized_profiles(total)
        assert corpus_size(profiles) == total
        assert len(profiles) == len(CANONICAL_PROFILES)
        assert all(p.count >= 1 for p in profiles)
        # the taxa keep their canonical order and everything but the
        # counts is untouched
        for sized, canonical in zip(profiles, CANONICAL_PROFILES):
            assert sized.taxon is canonical.taxon

    def test_canonical_size_passes_through_unchanged(self):
        assert sized_profiles(CANONICAL_SIZE) is CANONICAL_PROFILES

    def test_proportions_track_the_canonical_mix(self):
        profiles = sized_profiles(10_000)
        for sized, canonical in zip(profiles, CANONICAL_PROFILES):
            expected = 10_000 * canonical.count / CANONICAL_SIZE
            assert sized.count == pytest.approx(expected, abs=1)

    def test_too_small_corpus_is_refused(self):
        with pytest.raises(ValueError):
            sized_profiles(len(CANONICAL_PROFILES) - 1)
        with pytest.raises(ValueError):
            sized_profiles(0)


class TestLargeCorpusRngIdentity:
    N = 10_000
    SPOT_INDEXES = (0, 4999, 9999)

    @pytest.fixture(scope="class")
    def specs_10k(self):
        return corpus_specs(profiles=sized_profiles(self.N))

    def test_streaming_sampler_matches_the_list(self, specs_10k):
        assert len(specs_10k) == self.N
        for i, (pair, expected) in enumerate(
            zip(
                iter_corpus_specs(profiles=sized_profiles(self.N)),
                specs_10k,
            )
        ):
            assert pair == expected, f"spec sequence diverged at {i}"

    def test_resampling_is_deterministic(self, specs_10k):
        again = corpus_specs(profiles=sized_profiles(self.N))
        for i in self.SPOT_INDEXES:
            assert again[i] == specs_10k[i]

    def test_names_and_seeds_are_unique(self, specs_10k):
        names = [spec.name for spec, _ in specs_10k]
        assert len(set(names)) == self.N
        seeds = [spec.seed for spec, _ in specs_10k]
        assert len(set(seeds)) == self.N

    def test_spot_projects_generate_identically(self, specs_10k):
        """Generation is a pure function of the spec at any index."""
        for i in self.SPOT_INDEXES:
            spec, profile = specs_10k[i]
            first = generate_project(spec, profile)
            second = generate_project(spec, profile)
            assert first.repository.commits == second.repository.commits, (
                f"project {i} ({spec.name}) generated differing histories"
            )

    def test_different_sizes_share_no_draw_sequence(self):
        """Corpus size is part of the sampled identity.

        The single-RNG sampler draws sequentially, so different N
        produce different spec sequences (and therefore different
        shard families) even at a shared seed — a 1000-project study
        is its own corpus, not a prefix of the 2000-project one.
        """
        small = corpus_specs(profiles=sized_profiles(1000))
        large = corpus_specs(profiles=sized_profiles(2000))
        assert [s for s, _ in small] != [s for s, _ in large[:1000]]
