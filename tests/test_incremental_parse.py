"""Property tests for the incremental statement-level parse engine.

The mine hot path parses each DDL version through the fragment cache
(:mod:`repro.perf.fragments`): unchanged statements reuse the previous
version's parsed tables and only edited statements are re-lexed.  These
tests drive randomly evolved histories (well past 30 versions) through
both the incremental path (``SchemaHistory.from_file_versions`` via the
active :class:`~repro.perf.cache.ParseCache`) and the untouched oracles
(``parse_history_reference`` / ``diff_schemas_reference``) and require
version-by-version equality — schemas, issues and every transition
delta — plus sane reuse accounting and correct behaviour around torn
and garbage statements.
"""

import random

import pytest

from repro.diff import diff_schemas
from repro.diff.engine import diff_schemas_reference
from repro.mining.history import SchemaHistory, parse_history_reference
from repro.obs.events import get_recorder, reset_recorder
from repro.obs.metrics import reset_metrics
from repro.perf.cache import CACHE_DIR_ENV, ParseCache, configure_cache, get_cache
from repro.sqlparser import parse_schema
from repro.vcs import FileVersion, synthetic_sha, utc


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    configure_cache()
    reset_recorder()
    reset_metrics()
    yield
    configure_cache()
    reset_recorder()
    reset_metrics()


# ----------------------------------------------------------------------
# randomized history generator

_TYPES = ("INT", "BIGINT", "VARCHAR(40)", "VARCHAR(255)", "TEXT",
          "DECIMAL(10,2)", "DATETIME")


def _render(tables: dict, version: int) -> str:
    """One DDL dump text for the model state.

    The per-version header comment deliberately churns a comment-only
    prefix segment every version; the table statements themselves only
    change when the model behind them does.
    """
    lines = [f"-- dump of demo schema, revision {version}", ""]
    for name, columns in tables.items():
        body = ",\n".join(f"  {col} {type_}" for col, type_ in columns)
        lines.append(f"CREATE TABLE {name} (\n{body}\n);")
        lines.append("")
    return "\n".join(lines)


def _evolve(rng: random.Random, tables: dict, counter: list) -> None:
    """Apply one random edit to the model (grow-biased, like the paper)."""
    op = rng.choices(
        ("add_table", "add_column", "change_type", "drop_column",
         "drop_table", "rename_table"),
        weights=(3, 5, 2, 2, 1, 1),
    )[0]
    if op == "add_table" or not tables:
        counter[0] += 1
        tables[f"t{counter[0]}"] = [
            ("id", "INT"),
            (f"c{counter[0]}", rng.choice(_TYPES)),
        ]
        return
    name = rng.choice(sorted(tables))
    columns = tables[name]
    if op == "add_column":
        counter[0] += 1
        columns.append((f"c{counter[0]}", rng.choice(_TYPES)))
    elif op == "change_type" and columns:
        index = rng.randrange(len(columns))
        col, _ = columns[index]
        columns[index] = (col, rng.choice(_TYPES))
    elif op == "drop_column" and len(columns) > 1:
        columns.pop(rng.randrange(len(columns)))
    elif op == "drop_table" and len(tables) > 1:
        del tables[name]
    elif op == "rename_table":
        counter[0] += 1
        tables[f"t{counter[0]}"] = tables.pop(name)


def _random_history(seed: int, length: int) -> list[FileVersion]:
    rng = random.Random(seed)
    tables: dict = {"t0": [("id", "INT"), ("name", "VARCHAR(40)")]}
    counter = [0]
    versions = []
    for i in range(length):
        # most transitions edit 1-2 statements out of many — the 99%
        # identical regime the incremental engine is built for
        for _ in range(rng.choice((0, 1, 1, 1, 2))):
            _evolve(rng, tables, counter)
        versions.append(
            FileVersion(
                synthetic_sha(seed * 1000 + i),
                utc(2020, 1 + (i % 12), 1 + i // 12),
                _render(tables, i),
            )
        )
    return versions


def _assert_histories_equal(
    incremental: SchemaHistory, reference: SchemaHistory
) -> None:
    assert len(incremental.versions) == len(reference.versions)
    for inc, ref in zip(incremental.versions, reference.versions):
        assert inc.sha == ref.sha
        assert inc.date == ref.date
        assert inc.schema == ref.schema
        assert inc.issues == ref.issues
    assert len(incremental.transitions) == len(reference.transitions)
    for inc, ref in zip(incremental.transitions, reference.transitions):
        assert inc.index == ref.index
        assert inc.delta == ref.delta


class TestRandomizedHistories:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_incremental_matches_reference(self, seed):
        versions = _random_history(seed, length=35)
        incremental = SchemaHistory.from_file_versions(versions)
        reference = parse_history_reference(versions)
        _assert_histories_equal(incremental, reference)
        # and every transition's delta is byte-equal to the reference
        # diff of the *incremental* schemas, so the identity fast paths
        # in diff_schemas never change the answer
        for i in range(1, len(incremental.versions)):
            assert incremental.transitions[i].delta == diff_schemas_reference(
                incremental.versions[i - 1].schema,
                incremental.versions[i].schema,
            )

    @pytest.mark.parametrize("seed", [3, 11])
    def test_reuse_dominates_and_nothing_falls_back(self, seed):
        versions = _random_history(seed, length=30)
        SchemaHistory.from_file_versions(versions)
        stats = get_cache().stats
        assert stats.fallback_parses == 0
        # consecutive versions are near-identical: statement reuse must
        # dominate (the acceptance bar for the real corpus is >= 90%)
        assert stats.statement_reuse_rate is not None
        assert stats.statement_reuse_rate > 0.80
        # the churning header comment misses every version, but those
        # segments carry zero parse units — the real work is reused
        assert stats.unit_hits > stats.unit_misses

    def test_identical_versions_share_the_parse(self):
        text = _render({"t0": [("id", "INT")]}, 0)
        versions = [
            FileVersion(synthetic_sha(1), utc(2021, 1), text),
            FileVersion(synthetic_sha(2), utc(2021, 2), text),
        ]
        history = SchemaHistory.from_file_versions(versions)
        # whole-version interning: the diff identity fast path sees the
        # very same ParseResult and reports an empty delta
        assert history.versions[0].schema is history.versions[1].schema
        assert history.transitions[1].delta.changes == []


class TestTornStatements:
    GOOD = "CREATE TABLE users (id INT, name VARCHAR(40));"
    GARBAGE = "CREATE GARBAGE ))) not a statement ;"
    TORN = "CREATE TABLE torn (a INT,"  # ends mid-body at EOF

    def test_garbage_statement_only_invalidates_itself(self):
        cache = ParseCache()
        cache.parse(self.GOOD + "\n" + self.GARBAGE)
        before = cache.stats
        cache.parse(self.GOOD + "\n" + self.GARBAGE + "\nCREATE TABLE t2 (x INT);")
        after = cache.stats
        # the good statement AND the garbage fragment (with its memoised
        # issues) are both reused; only the new statement is parsed
        assert after.statement_hits > before.statement_hits
        assert after.fallback_parses == 0

    @pytest.mark.parametrize("bad", [GARBAGE, TORN, "'; unterminated"])
    def test_matches_reference_parse(self, bad):
        for text in (
            self.GOOD + "\n" + bad,
            bad,
            bad + "\n" + self.GOOD,
        ):
            expected = parse_schema(text)
            got = ParseCache().parse(text)
            assert got.schema == expected.schema
            assert got.issues == expected.issues

    def test_issues_and_warnings_once_per_version(self):
        versions = [
            FileVersion(synthetic_sha(1), utc(2020, 1), self.GOOD),
            FileVersion(synthetic_sha(2), utc(2020, 2), "CREATE TABLE broken ("),
        ]
        history = SchemaHistory.from_file_versions(versions)
        reference = parse_history_reference(versions)
        _assert_histories_equal(history, reference)
        codes = [record["code"] for record in get_recorder().warnings]
        assert codes == ["ddl-unparseable"]

    def test_torn_then_healed_version(self):
        healed = self.GOOD + "\nCREATE TABLE torn (a INT, b INT);"
        versions = [
            FileVersion(synthetic_sha(1), utc(2020, 1), self.GOOD),
            FileVersion(synthetic_sha(2), utc(2020, 2),
                        self.GOOD + "\n" + self.TORN),
            FileVersion(synthetic_sha(3), utc(2020, 3), healed),
        ]
        incremental = SchemaHistory.from_file_versions(versions)
        reference = parse_history_reference(versions)
        _assert_histories_equal(incremental, reference)


class TestDiffFastPaths:
    def test_identical_objects_short_circuit(self):
        result = parse_schema("CREATE TABLE t (id INT);")
        delta = diff_schemas(result.schema, result.schema)
        assert delta.changes == []

    def test_shared_tables_still_diff_the_rest(self):
        cache = ParseCache()
        v1 = cache.parse("CREATE TABLE a (x INT);\nCREATE TABLE b (y INT);")
        v2 = cache.parse("CREATE TABLE a (x INT);\nCREATE TABLE b (y INT, z INT);")
        # structural sharing: table a is the same object across versions
        assert v1.schema.tables[0] is v2.schema.tables[0]
        delta = diff_schemas(v1.schema, v2.schema)
        assert delta == diff_schemas_reference(v1.schema, v2.schema)
        assert any(change.table == "b" for change in delta.changes)
