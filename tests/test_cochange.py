"""Unit tests for co-change analysis."""

import pytest

from repro.analysis import cochange_stats, corpus_cochange
from repro.vcs import Commit, FileChange, Repository, synthetic_sha, utc


def repo_from(spec):
    """Build a repo from [(files...)] per commit, in order."""
    repo = Repository(name="cc")
    for i, files in enumerate(spec):
        repo.add_commit(
            Commit(
                sha=synthetic_sha("cc", i),
                author="D",
                email="d@x",
                date=utc(2020, 1, 1 + i),
                message=f"c{i}",
                changes=[FileChange("M", f) for f in files],
            )
        )
    return repo


class TestCoChangeStats:
    def test_same_commit_cochange(self):
        repo = repo_from([
            ("schema.sql", "src/a.py"),   # schema + source together
            ("src/b.py",),
            ("schema.sql",),              # schema alone
        ])
        stats = cochange_stats(repo, "schema.sql", window=0)
        assert stats.schema_commits == 2
        assert stats.same_commit == 1
        assert stats.same_commit_rate == pytest.approx(0.5)

    def test_window_catches_nearby_source(self):
        repo = repo_from([
            ("src/a.py",),
            ("schema.sql",),              # schema alone, source adjacent
            ("src/b.py",),
        ])
        no_window = cochange_stats(repo, "schema.sql", window=0)
        with_window = cochange_stats(repo, "schema.sql", window=1)
        assert no_window.in_window == 0
        assert with_window.in_window == 1
        assert with_window.window_rate == pytest.approx(1.0)

    def test_window_respects_bounds(self):
        repo = repo_from([("schema.sql",)])
        stats = cochange_stats(repo, "schema.sql", window=5)
        assert stats.in_window == 0

    def test_active_shas_filter(self):
        repo = repo_from([
            ("schema.sql", "src/a.py"),
            ("schema.sql",),
        ])
        only_first = {repo.commits[0].sha}
        stats = cochange_stats(
            repo, "schema.sql", window=0, active_shas=only_first
        )
        assert stats.schema_commits == 1
        assert stats.same_commit == 1

    def test_rate_without_schema_commits_raises(self):
        repo = repo_from([("src/a.py",)])
        stats = cochange_stats(repo, "schema.sql")
        with pytest.raises(ValueError):
            stats.same_commit_rate


class TestCorpusCoChange:
    def test_aggregates_means(self):
        repo_a = repo_from([("schema.sql", "src/a.py")])      # rate 1.0
        repo_b = repo_from([("schema.sql",), ("schema.sql",)])  # rate 0.0
        result = corpus_cochange(
            [(repo_a, "schema.sql"), (repo_b, "schema.sql")], window=0
        )
        assert result.projects == 2
        assert result.mean_same_commit_rate == pytest.approx(0.5)

    def test_projects_without_schema_commits_skipped(self):
        repo_a = repo_from([("schema.sql", "src/a.py")])
        repo_b = repo_from([("src/only.py",)])
        result = corpus_cochange(
            [(repo_a, "schema.sql"), (repo_b, "schema.sql")]
        )
        assert result.projects == 1

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            corpus_cochange([])

    def test_on_generated_corpus_sample(self):
        from repro.corpus import generate_corpus

        pairs = [
            (p.repository, p.spec.ddl_path)
            for p in generate_corpus(seed=314)[::23]
        ]
        result = corpus_cochange(pairs)
        # generated schema commits usually carry 0-3 co-changed files
        assert 0.2 <= result.mean_same_commit_rate <= 1.0
        assert result.mean_window_rate >= result.mean_same_commit_rate
