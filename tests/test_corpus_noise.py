"""Unit tests for vendor-noise injection."""

import random

import pytest

from repro.corpus import random_schema
from repro.corpus.noise import inject_noise, table_names_in
from repro.corpus.ddlgen import emit_ddl
from repro.diff import diff_ddl
from repro.sqlparser import parse_schema


@pytest.fixture()
def clean_mysql():
    schema = random_schema(random.Random(42))
    return emit_ddl(schema, "mysql")


@pytest.fixture()
def clean_postgres():
    schema = random_schema(random.Random(43))
    return emit_ddl(schema, "postgres")


class TestTableNamesIn:
    def test_backticked_and_bare(self):
        text = "CREATE TABLE `a` (x INT);\nCREATE TABLE b (y INT);"
        assert table_names_in(text) == ["a", "b"]

    def test_none(self):
        assert table_names_in("-- nothing here") == []


class TestInjectNoise:
    def test_mysql_noise_is_logically_invisible(self, clean_mysql):
        for seed in range(10):
            noisy = inject_noise(
                clean_mysql, random.Random(seed), "mysql"
            )
            assert diff_ddl(clean_mysql, noisy).is_identical

    def test_postgres_noise_is_logically_invisible(self, clean_postgres):
        for seed in range(10):
            noisy = inject_noise(
                clean_postgres, random.Random(seed), "postgres"
            )
            assert diff_ddl(clean_postgres, noisy).is_identical

    def test_noise_produces_no_parse_issues(self, clean_mysql):
        noisy = inject_noise(clean_mysql, random.Random(1), "mysql")
        assert parse_schema(noisy).issues == []

    def test_mysql_header_present(self, clean_mysql):
        noisy = inject_noise(clean_mysql, random.Random(1), "mysql")
        assert "MySQL dump" in noisy
        assert "/*!40101" in noisy

    def test_postgres_header_present(self, clean_postgres):
        noisy = inject_noise(clean_postgres, random.Random(1), "postgres")
        assert "PostgreSQL database dump" in noisy
        assert "SET statement_timeout" in noisy

    def test_seed_data_references_real_table(self, clean_mysql):
        tables = set(table_names_in(clean_mysql))
        for seed in range(20):
            noisy = inject_noise(
                clean_mysql, random.Random(seed), "mysql"
            )
            for line in noisy.splitlines():
                if line.startswith("INSERT INTO"):
                    target = line.split()[2].strip("`")
                    assert target in tables

    def test_deterministic(self, clean_mysql):
        a = inject_noise(clean_mysql, random.Random(5), "mysql")
        b = inject_noise(clean_mysql, random.Random(5), "mysql")
        assert a == b


class TestNoiseInCorpus:
    def test_noisy_share_is_substantial(self):
        from repro.corpus import generate_corpus

        corpus = generate_corpus(seed=777)
        noisy = sum(
            1 for p in corpus
            if "dump" in p.ddl_versions[0][:120].lower()
        )
        assert 0.2 * len(corpus) <= noisy <= 0.6 * len(corpus)

    def test_noisy_projects_mine_cleanly(self):
        from repro.corpus import generate_corpus
        from repro.mining import mine_project

        corpus = generate_corpus(seed=777)
        noisy = [
            p for p in corpus
            if "dump" in p.ddl_versions[0][:120].lower()
        ]
        for project in noisy[::7]:
            history = mine_project(project.repository)
            assert history.schema_heartbeat.total > 0
