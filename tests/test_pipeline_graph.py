"""Tests for the stage graph: fingerprints, resolution, maintenance."""

import pytest

from repro.obs.events import reset_recorder
from repro.obs.metrics import get_metrics, reset_metrics
from repro.pipeline import (
    CODE_VERSIONS,
    STAGE_NAMES,
    STAGES,
    MemoryStore,
    Pipeline,
    dependents_of,
)

#: A small-but-real corpus (12 projects at scale 16) keeps compute
#: tests fast while exercising every stage.
SCALE = 16


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


def fingerprints(**kwargs) -> dict[str, str]:
    pipe = Pipeline(store=MemoryStore(), **kwargs)
    return {stage: pipe.fingerprint(stage) for stage in STAGE_NAMES}


class TestGraphShape:
    def test_declaration_order_is_topological(self):
        seen = set()
        for name in STAGE_NAMES:
            assert set(STAGES[name].deps) <= seen
            seen.add(name)

    def test_dependents_of_generate_is_everything_downstream(self):
        assert dependents_of("generate") == {
            "mine", "analyze", "figures", "statistics", "report",
        }

    def test_dependents_of_analyze(self):
        assert dependents_of("analyze") == {
            "figures", "statistics", "report",
        }

    def test_dependents_of_a_sink_is_empty(self):
        assert dependents_of("report") == set()


class TestFingerprints:
    def test_deterministic_across_pipelines(self):
        assert fingerprints(seed=7) == fingerprints(seed=7)

    def test_seed_change_rekeys_every_stage(self):
        a, b = fingerprints(seed=7), fingerprints(seed=8)
        assert all(a[stage] != b[stage] for stage in STAGE_NAMES)

    def test_scale_change_rekeys_every_stage(self):
        a, b = fingerprints(scale=1), fingerprints(scale=2)
        assert all(a[stage] != b[stage] for stage in STAGE_NAMES)

    def test_report_format_rekeys_only_report(self):
        a = fingerprints(report_format="markdown")
        b = fingerprints(report_format="html")
        assert a["report"] != b["report"]
        for stage in STAGE_NAMES[:-1]:
            assert a[stage] == b[stage]

    def test_code_version_bump_rekeys_exactly_the_dependent_cone(self):
        a = fingerprints()
        b = fingerprints(code_versions={"analyze": "2"})
        dirty = {"analyze"} | dependents_of("analyze")
        for stage in STAGE_NAMES:
            if stage in dirty:
                assert a[stage] != b[stage], stage
            else:
                assert a[stage] == b[stage], stage

    def test_jobs_is_not_a_fingerprint_input(self):
        # jobs-invariant stages mean serial and parallel runs share
        # artifacts — the core of the warm-rerun guarantee
        assert fingerprints(jobs=1) == fingerprints(jobs=4)

    def test_unknown_code_version_override_is_inert(self):
        pipe = Pipeline(store=MemoryStore(), code_versions={"analyze": "9"})
        assert pipe.code_versions["analyze"] == "9"
        assert pipe.code_versions["mine"] == CODE_VERSIONS["mine"]


class TestResolution:
    def test_cold_study_writes_one_artifact_per_resolved_stage(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        # report is only rendered on demand
        assert len(store) == 5
        assert store.stats.writes == 5
        assert store.stats.hits == 0

    def test_study_is_memoised_per_pipeline(self):
        pipe = Pipeline(scale=SCALE, store=MemoryStore())
        assert pipe.study() is pipe.study()

    def test_warm_hit_short_circuits_upstream(self):
        store = MemoryStore()
        Pipeline(scale=SCALE, store=store).study()
        reset_metrics()

        warm = Pipeline(scale=SCALE, store=store)
        warm.study()
        counters = get_metrics().snapshot().counters
        # analyze/figures/statistics hit; generate and mine are never
        # even looked up, let alone recomputed
        assert counters.get("artifact.hit") == 3
        assert "artifact.miss" not in counters
        totals = warm.timings.artifact_totals
        assert (totals.hits, totals.recomputes) == (3, 0)

    def test_warm_rows_equal_cold_rows(self):
        store = MemoryStore()
        cold = Pipeline(scale=SCALE, store=store).study()
        warm = Pipeline(scale=SCALE, store=store).study()
        assert warm.projects == cold.projects
        assert warm.skipped == cold.skipped

    def test_report_resolves_through_the_store(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        text = pipe.report()
        assert "projects analysed" in text
        assert len(store) == 6

        warm = Pipeline(scale=SCALE, store=store)
        assert warm.report() == text
        # the report hit alone satisfied the request
        assert warm.timings.artifact_totals.hits == 1


class TestStatus:
    def test_cold_then_warm(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        assert all(not row["warm"] for row in pipe.status())

        pipe.study()
        by_stage = {row["stage"]: row for row in pipe.status()}
        for stage in ("generate", "mine", "analyze", "figures",
                      "statistics"):
            assert by_stage[stage]["warm"], stage
        assert not by_stage["report"]["warm"]

    def test_rows_carry_identity(self):
        row = Pipeline(store=MemoryStore()).status()[0]
        assert row["stage"] == "generate"
        assert row["code_version"] == CODE_VERSIONS["generate"]
        assert len(row["fingerprint"]) == 64


class TestInvalidate:
    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            Pipeline(store=MemoryStore()).invalidate("figments")

    def test_invalidate_stage_drops_exactly_the_dependent_cone(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        assert pipe.invalidate("analyze") == 3  # analyze+figures+statistics

        by_stage = {row["stage"]: row["warm"] for row in pipe.status()}
        assert by_stage["generate"] and by_stage["mine"]
        assert not by_stage["analyze"]
        assert not by_stage["figures"]
        assert not by_stage["statistics"]

    def test_rerun_after_invalidate_reuses_upstream(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        cold = pipe.study()
        pipe.invalidate("analyze")

        rerun = Pipeline(scale=SCALE, store=store)
        result = rerun.study()
        assert result.projects == cold.projects
        stats = rerun.timings.artifacts
        assert stats["mine"].hits == 1  # mine came warm
        assert stats["analyze"].recomputes == 1

    def test_invalidate_all(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        assert pipe.invalidate() == 5
        assert len(store) == 0

    def test_other_seeds_survive(self):
        store = MemoryStore()
        Pipeline(scale=SCALE, seed=7, store=store).study()
        other = Pipeline(scale=SCALE, seed=8, store=store)
        other.study()
        other.invalidate()
        assert len(store) == 5  # seed-7 artifacts untouched
