"""Tests for the sharded stage graph: fingerprints, resolution,
maintenance, and the single-project invalidation contract."""

import pytest

from repro.obs.events import reset_recorder
from repro.obs.metrics import get_metrics, reset_metrics
from repro.pipeline import (
    CODE_VERSIONS,
    MAP_STAGE_NAMES,
    REDUCE_STAGE_NAMES,
    STAGE_NAMES,
    STAGES,
    MemoryStore,
    Pipeline,
    dependents_of,
)

#: A small-but-real corpus (12 projects at scale 16) keeps compute
#: tests fast while exercising every stage.
SCALE = 16


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


def fingerprints(**kwargs) -> dict[str, str]:
    pipe = Pipeline(store=MemoryStore(), **kwargs)
    return {stage: pipe.fingerprint(stage) for stage in STAGE_NAMES}


class TestGraphShape:
    def test_declaration_order_is_topological(self):
        seen = set()
        for name in STAGE_NAMES:
            assert set(STAGES[name].deps) <= seen
            seen.add(name)

    def test_map_reduce_partition(self):
        assert MAP_STAGE_NAMES == ("generate", "mine", "analyze")
        assert REDUCE_STAGE_NAMES == (
            "aggregate", "figures", "statistics", "report",
        )
        assert set(MAP_STAGE_NAMES) | set(REDUCE_STAGE_NAMES) == set(
            STAGE_NAMES
        )

    def test_dependents_of_generate_is_everything_downstream(self):
        assert dependents_of("generate") == {
            "mine", "analyze", "aggregate", "figures", "statistics",
            "report",
        }

    def test_dependents_of_analyze(self):
        assert dependents_of("analyze") == {
            "aggregate", "figures", "statistics", "report",
        }

    def test_dependents_of_a_sink_is_empty(self):
        assert dependents_of("report") == set()


class TestFingerprints:
    def test_deterministic_across_pipelines(self):
        assert fingerprints(seed=7) == fingerprints(seed=7)

    def test_seed_change_rekeys_every_stage(self):
        a, b = fingerprints(seed=7), fingerprints(seed=8)
        assert all(a[stage] != b[stage] for stage in STAGE_NAMES)

    def test_scale_change_rekeys_every_stage(self):
        a, b = fingerprints(scale=1), fingerprints(scale=2)
        assert all(a[stage] != b[stage] for stage in STAGE_NAMES)

    def test_report_format_rekeys_only_report(self):
        a = fingerprints(report_format="markdown")
        b = fingerprints(report_format="html")
        assert a["report"] != b["report"]
        for stage in STAGE_NAMES[:-1]:
            assert a[stage] == b[stage]

    def test_code_version_bump_rekeys_exactly_the_dependent_cone(self):
        a = fingerprints()
        b = fingerprints(code_versions={"analyze": "bumped"})
        dirty = {"analyze"} | dependents_of("analyze")
        for stage in STAGE_NAMES:
            if stage in dirty:
                assert a[stage] != b[stage], stage
            else:
                assert a[stage] == b[stage], stage

    def test_jobs_is_not_a_fingerprint_input(self):
        # jobs-invariant stages mean serial and parallel runs share
        # artifacts — the core of the warm-rerun guarantee
        assert fingerprints(jobs=1) == fingerprints(jobs=4)

    def test_project_override_rekeys_one_shard_and_the_reduce_tail(self):
        base = Pipeline(store=MemoryStore())
        target = base.shards()[0].project
        other = Pipeline(
            store=MemoryStore(), project_overrides={target: 999_999}
        )
        base_shards = {s.project: s.keys for s in base.shards()}
        other_shards = {s.project: s.keys for s in other.shards()}
        assert base_shards.keys() == other_shards.keys()
        for project, keys in base_shards.items():
            if project == target:
                assert keys != other_shards[project]
            else:
                assert keys == other_shards[project]
        for stage in STAGE_NAMES:
            assert base.fingerprint(stage) != other.fingerprint(stage)

    def test_unknown_project_override_raises(self):
        pipe = Pipeline(
            store=MemoryStore(), project_overrides={"no/such-project": 1}
        )
        with pytest.raises(ValueError, match="no/such-project"):
            pipe.shards()

    def test_unknown_code_version_override_is_inert(self):
        pipe = Pipeline(store=MemoryStore(), code_versions={"analyze": "9"})
        assert pipe.code_versions["analyze"] == "9"
        assert pipe.code_versions["mine"] == CODE_VERSIONS["mine"]


class TestResolution:
    def test_resolving_a_map_stage_directly_is_an_error(self):
        with pytest.raises(ValueError, match="per shard"):
            Pipeline(store=MemoryStore()).resolve("mine")

    def test_cold_study_writes_shard_and_reduce_artifacts(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        n = len(pipe.shards())
        # one artifact per shard per map stage, plus aggregate,
        # figures and statistics; report is only rendered on demand
        assert len(store) == 3 * n + 3
        assert store.stats.writes == 3 * n + 3
        assert store.stats.hits == 0

    def test_study_is_memoised_per_pipeline(self):
        pipe = Pipeline(scale=SCALE, store=MemoryStore())
        assert pipe.study() is pipe.study()

    def test_warm_aggregate_hit_short_circuits_the_map_phase(self):
        store = MemoryStore()
        Pipeline(scale=SCALE, store=store).study()
        reset_metrics()

        warm = Pipeline(scale=SCALE, store=store)
        warm.study()
        counters = get_metrics().snapshot().counters
        # aggregate/figures/statistics hit; not a single shard key of
        # generate/mine/analyze is even looked up, let alone recomputed
        assert counters.get("artifact.hit") == 3
        assert "artifact.miss" not in counters
        totals = warm.timings.artifact_totals
        assert (totals.hits, totals.recomputes) == (3, 0)
        for stage in MAP_STAGE_NAMES:
            assert stage not in warm.timings.artifacts

    def test_warm_rows_equal_cold_rows(self):
        store = MemoryStore()
        cold = Pipeline(scale=SCALE, store=store).study()
        warm = Pipeline(scale=SCALE, store=store).study()
        assert warm.projects == cold.projects
        assert warm.skipped == cold.skipped

    def test_report_resolves_through_the_store(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        text = pipe.report()
        assert "projects analysed" in text
        assert len(store) == 3 * len(pipe.shards()) + 4

        warm = Pipeline(scale=SCALE, store=store)
        assert warm.report() == text
        # the report hit alone satisfied the request
        assert warm.timings.artifact_totals.hits == 1


class TestStatus:
    def test_cold_then_warm(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        assert all(not row["warm"] for row in pipe.status())

        pipe.study()
        by_stage = {row["stage"]: row for row in pipe.status()}
        for stage in ("generate", "mine", "analyze", "aggregate",
                      "figures", "statistics"):
            assert by_stage[stage]["warm"], stage
        assert not by_stage["report"]["warm"]

    def test_map_rows_carry_shard_counts(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        n = len(pipe.shards())
        by_stage = {row["stage"]: row for row in pipe.status()}
        for stage in MAP_STAGE_NAMES:
            row = by_stage[stage]
            assert row["kind"] == "map"
            assert row["shards"] == n
            assert row["warm_shards"] == n
        for stage in REDUCE_STAGE_NAMES:
            row = by_stage[stage]
            assert row["kind"] == "reduce"
            assert row["shards"] is None

    def test_rows_carry_identity(self):
        row = Pipeline(store=MemoryStore()).status()[0]
        assert row["stage"] == "generate"
        assert row["code_version"] == CODE_VERSIONS["generate"]
        assert len(row["fingerprint"]) == 64

    def test_shard_status_lists_every_project(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        rows = pipe.shard_status()
        assert len(rows) == len(pipe.shards())
        assert all(
            row["generate"] and row["mine"] and row["analyze"]
            for row in rows
        )


class TestInvalidate:
    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            Pipeline(store=MemoryStore()).invalidate("figments")

    def test_unknown_project_raises(self):
        pipe = Pipeline(scale=SCALE, store=MemoryStore())
        with pytest.raises(KeyError):
            pipe.invalidate(project="no/such-project")

    def test_stage_and_project_together_raise(self):
        pipe = Pipeline(scale=SCALE, store=MemoryStore())
        with pytest.raises(ValueError):
            pipe.invalidate("analyze", project="x")

    def test_invalidate_stage_drops_exactly_the_dependent_cone(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        n = len(pipe.shards())
        # every analyze shard plus aggregate/figures/statistics
        assert pipe.invalidate("analyze") == n + 3

        by_stage = {row["stage"]: row["warm"] for row in pipe.status()}
        assert by_stage["generate"] and by_stage["mine"]
        assert not by_stage["analyze"]
        assert not by_stage["aggregate"]
        assert not by_stage["figures"]
        assert not by_stage["statistics"]

    def test_rerun_after_invalidate_reuses_upstream(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        cold = pipe.study()
        n = len(pipe.shards())
        pipe.invalidate("analyze")

        rerun = Pipeline(scale=SCALE, store=store)
        result = rerun.study()
        assert result.projects == cold.projects
        stats = rerun.timings.artifacts
        assert stats["mine"].hits == n  # every mine shard came warm
        assert stats["analyze"].recomputes == n

    def test_invalidate_project_recomputes_only_its_map_cone(self):
        # the acceptance scenario: after a cold sharded run, dropping
        # one project recomputes exactly its generate/mine/analyze
        # shards plus the reduce tail, and reproduces identical rows
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        cold = pipe.study()
        cold_text = pipe.report()
        n = len(pipe.shards())
        target = pipe.shards()[0].project
        # 3 shard artifacts + aggregate/figures/statistics/report
        assert pipe.invalidate(project=target) == 7

        rerun = Pipeline(scale=SCALE, store=store)
        result = rerun.study()
        stats = rerun.timings.artifacts
        for stage in MAP_STAGE_NAMES:
            assert stats[stage].recomputes == 1, stage
        assert stats["analyze"].hits == n - 1
        assert stats["generate"].hits == 0
        assert stats["mine"].hits == 0
        for stage in ("aggregate", "figures", "statistics"):
            assert stats[stage].recomputes == 1, stage
        assert result.projects == cold.projects
        assert result.skipped == cold.skipped
        assert rerun.report() == cold_text

    def test_invalidate_all(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        n = len(pipe.shards())
        assert pipe.invalidate() == 3 * n + 3
        assert len(store) == 0

    def test_other_seeds_survive(self):
        store = MemoryStore()
        keeper = Pipeline(scale=SCALE, seed=7, store=store)
        keeper.study()
        kept = len(store)
        other = Pipeline(scale=SCALE, seed=8, store=store)
        other.study()
        other.invalidate()
        assert len(store) == kept  # seed-7 artifacts untouched
