"""Unit tests for the content-addressed parse cache (repro.perf.cache)."""

import os
import pickle

import pytest

from repro.perf.cache import (
    CACHE_DIR_ENV,
    CacheStats,
    ParseCache,
    cached_parse_schema,
    configure_cache,
    content_key,
    get_cache,
)
from repro.sqlparser import ParseResult, parse_schema

DDL = "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(40));"
DDL2 = "CREATE TABLE posts (pid INT);"


class TestContentKey:
    def test_distinct_texts_distinct_keys(self):
        assert content_key(DDL, None) != content_key(DDL2, None)

    def test_dialect_is_part_of_the_key(self):
        assert content_key(DDL, None) != content_key(DDL, "mysql")
        assert content_key(DDL, "mysql") != content_key(DDL, "postgres")

    def test_key_is_stable(self):
        assert content_key(DDL, "mysql") == content_key(DDL, "mysql")


class TestMemoryCache:
    def test_hit_and_miss_counters(self):
        cache = ParseCache()
        first = cache.parse(DDL)
        second = cache.parse(DDL)
        assert first is second
        # one whole-version miss = one fresh statement fragment whose
        # CREATE TABLE body carries two elements (two parse units)
        assert cache.stats == CacheStats(
            hits=1, misses=1, statement_misses=1, unit_misses=2
        )
        assert cache.stats.hit_rate == 0.5
        assert len(cache) == 1

    def test_statement_reuse_across_versions(self):
        cache = ParseCache()
        cache.parse(DDL + "\n" + DDL2)
        cache.parse(DDL + "\nCREATE TABLE tags (tid INT);")
        stats = cache.stats
        # the shared leading statement (and the zero-unit whitespace
        # separator segment) hit the fragment layer
        assert stats.statement_hits == 2
        assert stats.unit_hits == 2  # both body elements of DDL reused
        assert 0.0 < stats.statement_reuse_rate < 1.0

    def test_result_matches_direct_parse(self):
        cache = ParseCache()
        cached = cache.parse(DDL)
        direct = parse_schema(DDL)
        assert cached.schema == direct.schema
        assert cached.issues == direct.issues

    def test_dialects_cached_separately(self):
        cache = ParseCache()
        generic = cache.parse(DDL)
        mysql = cache.parse(DDL, dialect="mysql")
        assert generic is not mysql
        assert cache.stats.misses == 2

    def test_clear_drops_memory(self):
        cache = ParseCache()
        cache.parse(DDL)
        cache.clear()
        assert len(cache) == 0
        cache.parse(DDL)
        # fragment/element memos were dropped too, so the statement
        # recompiles — and the monotone counters survived the clear
        assert cache.stats == CacheStats(
            hits=0, misses=2, statement_misses=2, unit_misses=4
        )


class TestDiskCache:
    def test_unusable_cache_dir_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        cache = ParseCache(cache_dir=blocker)
        assert cache.cache_dir is None
        result = cache.parse(DDL)
        assert cache.parse(DDL) is result
        assert cache.stats == CacheStats(
            hits=1, misses=1, disk_hits=0, statement_misses=1, unit_misses=2
        )

    def test_roundtrip_across_instances(self, tmp_path):
        writer = ParseCache(cache_dir=tmp_path)
        written = writer.parse(DDL)
        reader = ParseCache(cache_dir=tmp_path)
        read = reader.parse(DDL)
        assert reader.stats == CacheStats(hits=1, misses=0, disk_hits=1)
        assert read.schema == written.schema

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        writer = ParseCache(cache_dir=tmp_path)
        writer.parse(DDL)
        (entry,) = tmp_path.glob("*.pkl")
        entry.write_bytes(b"not a pickle")
        reader = ParseCache(cache_dir=tmp_path)
        result = reader.parse(DDL)
        assert reader.stats == CacheStats(
            hits=0, misses=1, statement_misses=1, unit_misses=2
        )
        assert len(result.schema) == 1

    def test_wrong_object_on_disk_degrades_to_miss(self, tmp_path):
        cache = ParseCache(cache_dir=tmp_path)
        key = content_key(DDL, None)
        (tmp_path / f"{key}.pkl").write_bytes(pickle.dumps({"not": "it"}))
        result = cache.parse(DDL)
        assert isinstance(result, ParseResult)
        assert cache.stats.misses == 1

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "cache"
        ParseCache(cache_dir=target)
        assert target.is_dir()


class TestStats:
    def test_arithmetic(self):
        a = CacheStats(hits=3, misses=1, disk_hits=2)
        b = CacheStats(hits=1, misses=1, disk_hits=1)
        assert a - b == CacheStats(hits=2, misses=0, disk_hits=1)
        assert a + b == CacheStats(hits=4, misses=2, disk_hits=3)

    def test_empty_hit_rate_is_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_as_dict(self):
        stats = CacheStats(hits=3, misses=1).as_dict()
        assert stats["hits"] == 3
        assert stats["hit_rate"] == 0.75

    def test_as_dict_from_dict_roundtrip(self):
        stats = CacheStats(
            hits=3, misses=1, disk_hits=2, statement_hits=40,
            statement_misses=4, fallback_parses=1, unit_hits=360,
            unit_misses=12,
        )
        assert CacheStats.from_dict(stats.as_dict()) == stats

    def test_from_dict_tolerates_old_records(self):
        # pre-statement-cache payloads have no "statements" block
        old = {"hits": 5, "misses": 2, "disk_hits": 1, "hit_rate": 0.71}
        stats = CacheStats.from_dict(old)
        assert stats.hits == 5
        assert stats.statement_lookups == 0
        assert stats.statement_reuse_rate == 0.0


class TestGlobalCache:
    @pytest.fixture(autouse=True)
    def _restore_global(self):
        import repro.perf.cache as module

        saved_cache = module._active
        saved_env = os.environ.get(CACHE_DIR_ENV)
        yield
        module._active = saved_cache
        if saved_env is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = saved_env

    def test_cached_parse_schema_uses_active_cache(self):
        configure_cache()
        before = get_cache().stats
        cached_parse_schema(DDL)
        cached_parse_schema(DDL)
        delta = get_cache().stats - before
        assert delta.hits == 1
        assert delta.misses == 1

    def test_configure_cache_exports_env_for_workers(self, tmp_path):
        cache = configure_cache(tmp_path)
        assert os.environ[CACHE_DIR_ENV] == str(tmp_path)
        assert cache.cache_dir == tmp_path
        configure_cache()
        assert CACHE_DIR_ENV not in os.environ
