"""Unit tests for bootstrap confidence intervals."""

import random

import pytest

from repro.stats import Interval, bootstrap, median_interval, share_interval


class TestShareInterval:
    def test_contains_true_share(self):
        rng = random.Random(5)
        flags = [rng.random() < 0.4 for _ in range(195)]
        interval = share_interval(flags)
        true_share = sum(flags) / len(flags)
        assert interval.estimate == pytest.approx(true_share)
        assert true_share in interval

    def test_wider_at_higher_confidence(self):
        flags = [i % 3 == 0 for i in range(100)]
        narrow = share_interval(flags, confidence=0.80)
        wide = share_interval(flags, confidence=0.99)
        assert (wide.high - wide.low) >= (narrow.high - narrow.low)

    def test_deterministic_with_seed(self):
        flags = [i % 2 == 0 for i in range(50)]
        a = share_interval(flags, seed=9)
        b = share_interval(flags, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_all_true_degenerates_to_one(self):
        interval = share_interval([True] * 30)
        assert interval.low == interval.high == 1.0


class TestMedianInterval:
    def test_covers_median(self):
        rng = random.Random(6)
        values = [rng.gauss(10, 2) for _ in range(200)]
        interval = median_interval(values)
        assert interval.low <= interval.estimate <= interval.high
        assert 9 <= interval.estimate <= 11

    def test_interval_narrows_with_sample_size(self):
        rng = random.Random(7)
        small = [rng.gauss(0, 1) for _ in range(20)]
        large = [rng.gauss(0, 1) for _ in range(2000)]
        wide = median_interval(small)
        narrow = median_interval(large, replicates=500)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)


class TestBootstrapGeneric:
    def test_custom_statistic(self):
        interval = bootstrap(
            list(range(100)), lambda s: max(s), replicates=200
        )
        assert interval.estimate == 99
        assert interval.high == 99

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            bootstrap([], len)

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            bootstrap([1, 2], len, confidence=1.5)

    def test_str_is_readable(self):
        interval = Interval(0.5, 0.4, 0.6, 0.95)
        assert "[0.400, 0.600]" in str(interval)
