"""Pipeline tests against realistic vendor dump files.

Two fixtures imitate what actually lives in FOSS repositories: a
mysqldump-style file (executable comment hints, LOCK/INSERT noise, index
definitions with prefix lengths) and a pg_dump-style file (SET headers,
sequences, OWNER TO, COPY data blocks, ALTER TABLE ONLY constraints).
"""

from pathlib import Path

import pytest

from repro.diff import diff_ddl
from repro.sqlparser import detect_dialect, parse_schema
from repro.sqlparser.parser import strip_copy_blocks

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def wordpress():
    return (FIXTURES / "wordpress_like.sql").read_text()


@pytest.fixture(scope="module")
def pgdump():
    return (FIXTURES / "pgdump_like.sql").read_text()


class TestWordpressLikeDump:
    def test_dialect_detected(self, wordpress):
        assert detect_dialect(wordpress) == "mysql"

    def test_all_tables_found(self, wordpress):
        schema = parse_schema(wordpress).schema
        assert schema.table_names == ["wp_users", "wp_posts", "wp_options"]

    def test_no_issues(self, wordpress):
        assert parse_schema(wordpress).issues == []

    def test_primary_keys(self, wordpress):
        schema = parse_schema(wordpress).schema
        assert schema.table("wp_users").primary_key == ("ID",)
        assert schema.table("wp_options").primary_key == ("option_id",)

    def test_column_details(self, wordpress):
        users = parse_schema(wordpress).schema.table("wp_users")
        assert len(users) == 10
        id_col = users.attribute("ID")
        assert id_col.data_type.family == "bigint"
        assert id_col.data_type.unsigned
        assert id_col.auto_increment
        assert not id_col.nullable
        assert users.attribute("user_login").default == "''"

    def test_longtext_normalises_to_text(self, wordpress):
        posts = parse_schema(wordpress).schema.table("wp_posts")
        assert posts.attribute("post_content").data_type.family == "text"

    def test_composite_index_ignored_structurally(self, wordpress):
        posts = parse_schema(wordpress).schema.table("wp_posts")
        assert "type_status_date" not in posts

    def test_table_options(self, wordpress):
        users = parse_schema(wordpress).schema.table("wp_users")
        assert users.options["ENGINE"] == "InnoDB"
        assert users.options["CHARSET"] == "utf8mb4"


class TestPgDumpLikeFile:
    def test_dialect_detected(self, pgdump):
        assert detect_dialect(pgdump) == "postgres"

    def test_all_tables_found(self, pgdump):
        schema = parse_schema(pgdump).schema
        assert schema.table_names == ["notes", "comments", "changesets"]

    def test_no_issues(self, pgdump):
        assert parse_schema(pgdump).issues == []

    def test_copy_block_stripped(self, pgdump):
        stripped = strip_copy_blocks(pgdump)
        assert "first note's body" not in stripped
        assert "CREATE TABLE public.comments" in stripped

    def test_copy_data_does_not_leak_tables(self, pgdump):
        # the unbalanced quotes inside COPY data must not swallow the
        # constraint statements that follow
        schema = parse_schema(pgdump).schema
        assert schema.table("comments").primary_key == ("id",)

    def test_constraints_applied_via_alter_only(self, pgdump):
        schema = parse_schema(pgdump).schema
        assert schema.table("notes").primary_key == ("id",)
        assert schema.table("changesets").primary_key == ("id",)

    def test_foreign_key(self, pgdump):
        comments = parse_schema(pgdump).schema.table("comments")
        fk = comments.foreign_keys[0]
        assert fk.ref_table == "notes"
        assert fk.columns == ("note_id",)

    def test_type_zoo(self, pgdump):
        notes = parse_schema(pgdump).schema.table("notes")
        assert notes.attribute("closed_at").data_type.family == (
            "timestamptz"
        )
        assert notes.attribute("created_at").data_type.family == (
            "timestamp"
        )
        assert notes.attribute("tags").data_type.is_array
        assert notes.attribute("status").data_type.family == "varchar"
        assert notes.attribute("status").data_type.params == (32,)

    def test_bigserial(self, pgdump):
        comments = parse_schema(pgdump).schema.table("comments")
        assert comments.attribute("id").auto_increment


class TestCrossDumpDiff:
    def test_diffing_realistic_dumps(self, wordpress, pgdump):
        """Diffing a dump against an edited copy measures only the edit."""
        edited = wordpress.replace(
            "`user_status` int(11) NOT NULL DEFAULT '0',", ""
        ).replace(
            "`autoload` varchar(20)", "`autoload` varchar(40)"
        )
        delta = diff_ddl(wordpress, edited)
        breakdown = delta.breakdown
        assert breakdown.ejected == 1        # user_status gone
        assert breakdown.type_changed == 1   # autoload widened
        assert breakdown.total == 2

    def test_identical_dump_reparse(self, pgdump):
        assert diff_ddl(pgdump, pgdump).is_identical
