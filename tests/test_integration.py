"""End-to-end integration tests: generator → text → mining → study.

These tests deliberately cross every module boundary: projects are
generated, serialised to git-log text and DDL files, re-parsed by the
same parsers a real clone would go through, mined into heartbeats,
measured, classified and aggregated into figures.
"""

import pytest

from repro.analysis import analyze_project, canonical_study, run_study
from repro.coevolution import theta_synchronicity
from repro.corpus import (
    ProjectSpec,
    generate_corpus,
    generate_project,
    profile_for,
    screen,
)
from repro.heartbeat import Month, is_monotone
from repro.mining import mine_project
from repro.taxa import Taxon
from repro.vcs import parse_repository


@pytest.fixture(scope="module")
def study():
    return canonical_study()


class TestPipelineConsistency:
    def test_git_log_roundtrip_preserves_mining(self):
        spec = ProjectSpec(
            name="it/roundtrip",
            taxon=Taxon.MODERATE,
            seed=2024,
            vendor="mysql",
            duration_months=30,
            start=Month(2013, 5),
        )
        project = generate_project(spec, profile_for(Taxon.MODERATE))
        # reparse the emitted text into a *fresh* repository
        reparsed = parse_repository("it/roundtrip", project.git_log_text)
        for path, versions in project.repository.file_contents.items():
            for version in versions:
                reparsed.record_version(path, version)
        a = mine_project(project.repository)
        b = mine_project(reparsed)
        assert a.project_heartbeat.values == b.project_heartbeat.values
        assert a.schema_heartbeat.values == b.schema_heartbeat.values

    def test_all_joint_progress_series_are_monotone(self, study):
        for project in study.projects:
            assert is_monotone(project.joint.project), project.name
            assert is_monotone(project.joint.schema), project.name
            assert is_monotone(project.joint.time), project.name

    def test_all_series_end_at_one(self, study):
        for project in study.projects:
            assert project.joint.project[-1] == pytest.approx(1.0)
            assert project.joint.schema[-1] == pytest.approx(1.0)

    def test_schema_activity_never_negative(self, study):
        for project in study.projects:
            assert all(
                v >= 0 for v in project.joint.schema
            ), project.name

    def test_measures_agree_with_direct_computation(self, study):
        for project in study.projects[::19]:
            direct = theta_synchronicity(project.joint, 0.10)
            assert project.sync10 == pytest.approx(direct)

    def test_every_generated_project_passes_elicitation(self):
        for project in generate_corpus(seed=606)[::9]:
            assert screen(project.repository).accepted


class TestStudyStability:
    def test_same_seed_same_study(self):
        a = run_study(generate_corpus(seed=11))
        b = run_study(generate_corpus(seed=11))
        assert [p.name for p in a.projects] == [p.name for p in b.projects]
        assert [p.sync10 for p in a.projects] == [
            p.sync10 for p in b.projects
        ]

    def test_different_seeds_similar_shape(self):
        """The calibrated *shape* holds across seeds, not just one draw."""
        for seed in (21, 22):
            study = run_study(generate_corpus(seed=seed))
            headline = study.headline()
            n = headline["projects"]
            assert n == 195
            # majority attains 75% early-ish (paper: 98/195 in first 20%)
            assert headline["attain75_first20"] >= 0.30 * n
            # ordering: always-over-time >= always-over-source >= both
            assert (
                headline["always_over_time"]
                >= headline["always_over_source"]
                >= headline["always_over_both"]
            )
            # a resistance tail exists (paper: 27 late 75%-attainers)
            assert headline["attain75_after80"] >= 5

    def test_taxon_ground_truth_recovered(self, study):
        labelled = [
            p for p in study.projects if p.true_taxon is not None
        ]
        agree = sum(1 for p in labelled if p.taxon is p.true_taxon)
        assert agree / len(labelled) >= 0.80


class TestAnalyzeSingleProject:
    def test_case_study_analogue(self):
        """A §3.3-style single-project walk-through, end to end."""
        spec = ProjectSpec(
            name="mapbox/osm-comments-parser-analogue",
            taxon=Taxon.MODERATE,
            seed=33,
            vendor="postgres",
            duration_months=22,
            start=Month(2015, 6),
        )
        project = generate_project(spec, profile_for(Taxon.MODERATE))
        history = mine_project(project.repository)
        measures = analyze_project(history, true_taxon=Taxon.MODERATE)
        assert measures.duration_months == 22
        assert 0 <= measures.sync10 <= 1
        assert measures.schema_commits >= 2
        assert measures.attainment(1.0) <= 1.0
