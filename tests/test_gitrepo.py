"""Integration tests against *real* git repositories.

These tests build an actual git repository on disk (commits with
controlled author dates), then run the paper's collection step —
``git log --name-status`` plus per-version ``git show`` — through
:mod:`repro.mining.gitrepo`.  Skipped when no git binary is available.
"""

import shutil
import subprocess

import pytest

from repro.heartbeat import Month
from repro.mining import (
    GitCommandError,
    MiningError,
    load_repository,
    mine_clone,
    read_git_log,
)

pytestmark = pytest.mark.skipif(
    shutil.which("git") is None, reason="git binary not available"
)

V1 = "CREATE TABLE users (id INT, name VARCHAR(40));\n"
V2 = (
    "CREATE TABLE users (id INT, name VARCHAR(40), email TEXT);\n"
    "CREATE TABLE posts (pid INT);\n"
)
V3 = "-- cosmetic header\n" + V2


def _git(cwd, *args, date=None):
    env = {
        "GIT_AUTHOR_NAME": "Test Dev",
        "GIT_AUTHOR_EMAIL": "dev@example.org",
        "GIT_COMMITTER_NAME": "Test Dev",
        "GIT_COMMITTER_EMAIL": "dev@example.org",
        "HOME": str(cwd),
        "PATH": "/usr/bin:/bin:/usr/local/bin",
    }
    if date is not None:
        env["GIT_AUTHOR_DATE"] = date
        env["GIT_COMMITTER_DATE"] = date
    subprocess.run(
        ["git", "-C", str(cwd), *args],
        check=True,
        capture_output=True,
        env=env,
    )


@pytest.fixture()
def clone(tmp_path):
    """A real git repository with three months of history."""
    root = tmp_path / "project"
    root.mkdir()
    _git(root, "init", "-q")

    (root / "schema.sql").write_text(V1)
    (root / "app.py").write_text("print('v1')\n")
    _git(root, "add", ".")
    _git(root, "commit", "-q", "-m", "initial import",
         date="2021-01-10T10:00:00 +0000")

    (root / "schema.sql").write_text(V2)
    (root / "app.py").write_text("print('v2')\n")
    _git(root, "add", ".")
    _git(root, "commit", "-q", "-m", "add posts table",
         date="2021-02-15T11:00:00 +0000")

    (root / "schema.sql").write_text(V3)
    _git(root, "add", ".")
    _git(root, "commit", "-q", "-m", "cosmetic",
         date="2021-03-20T12:00:00 +0000")

    (root / "util.py").write_text("x = 1\n")
    _git(root, "add", ".")
    _git(root, "commit", "-q", "-m", "add util",
         date="2021-04-02T09:00:00 +0000")
    return root


class TestReadGitLog:
    def test_log_text_has_name_status(self, clone):
        text = read_git_log(clone)
        assert "M\tschema.sql" in text
        assert "A\tapp.py" in text

    def test_missing_clone_raises(self, tmp_path):
        with pytest.raises(MiningError):
            load_repository(tmp_path / "nope")

    def test_non_repo_raises(self, tmp_path):
        (tmp_path / "plain").mkdir()
        with pytest.raises(GitCommandError):
            read_git_log(tmp_path / "plain")


class TestLoadRepository:
    def test_commits_in_chronological_order(self, clone):
        repo = load_repository(clone)
        assert len(repo.commits) == 4
        dates = [c.date for c in repo.commits]
        assert dates == sorted(dates)

    def test_ddl_versions_extracted(self, clone):
        repo = load_repository(clone)
        versions = repo.versions_of("schema.sql")
        assert [v.content for v in versions] == [V1, V2, V3]

    def test_explicit_ddl_path(self, clone):
        repo = load_repository(clone, ddl_path="schema.sql")
        assert len(repo.versions_of("schema.sql")) == 3

    def test_name_defaults_to_directory(self, clone):
        assert load_repository(clone).name == "project"


class TestMineClone:
    def test_full_pipeline_on_real_repo(self, clone):
        history = mine_clone(clone)
        # 4 months of life, Jan..Apr 2021
        assert history.project_heartbeat.start == Month(2021, 1)
        assert history.duration_months == 4
        # initial births: 2 attrs; second commit: email + posts.pid = 2;
        # the heartbeat spans the schema's own events (Jan..Mar) — the
        # project window alignment happens in JointProgress
        assert history.schema_heartbeat.values == [2.0, 2.0, 0.0]
        # project activity: 2, 2, 1, 1 files
        assert history.project_heartbeat.values == [2.0, 2.0, 1.0, 1.0]

    def test_measures_from_real_repo(self, clone):
        from repro.analysis import analyze_project

        measures = analyze_project(mine_clone(clone))
        assert measures.duration_months == 4
        assert measures.schema_commits == 3
        assert measures.active_schema_commits == 2
        assert 0 <= measures.sync10 <= 1
