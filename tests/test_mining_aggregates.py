"""Unit tests for schema-history aggregates and change locality."""

import pytest

from repro.mining import (
    HistoryAggregates,
    SchemaHistory,
    growth_vs_restructuring,
)
from repro.vcs import FileVersion, synthetic_sha, utc


def history_of(*ddl_versions):
    return SchemaHistory.from_file_versions(
        [
            FileVersion(synthetic_sha(i), utc(2020, 1 + i), text)
            for i, text in enumerate(ddl_versions)
        ]
    )


V1 = """
CREATE TABLE hot (a INT, b INT);
CREATE TABLE cold (x INT, y INT);
CREATE TABLE mild (m INT);
"""
V2 = V1 + "ALTER TABLE hot ADD COLUMN c INT;"
V3 = V2 + "ALTER TABLE hot ADD COLUMN d INT; ALTER TABLE hot DROP COLUMN a;"
V4 = V3 + "ALTER TABLE mild MODIFY COLUMN m BIGINT;"


class TestSizes:
    def test_size_series(self):
        aggregates = HistoryAggregates.of(history_of(V1, V2))
        assert aggregates.initial_size.attributes == 5
        assert aggregates.final_size.attributes == 6
        assert aggregates.net_attribute_growth == 1

    def test_max_attributes_tracks_peak(self):
        shrink = V2 + "DROP TABLE cold;"
        aggregates = HistoryAggregates.of(history_of(V1, V2, shrink))
        assert aggregates.max_attributes == 6
        assert aggregates.final_size.attributes == 4
        assert aggregates.net_attribute_growth == -1

    def test_size_reaches_fraction_at(self):
        aggregates = HistoryAggregates.of(history_of(V1, V2, V3))
        # max is 6 (v2 and v3 tie at 6); 60% of 6 = 3.6 <= 5 at version 0
        assert aggregates.size_reaches_fraction_at(0.6) == 0
        assert aggregates.size_reaches_fraction_at(1.0) == 1

    def test_fraction_validation(self):
        aggregates = HistoryAggregates.of(history_of(V1))
        with pytest.raises(ValueError):
            aggregates.size_reaches_fraction_at(0)


class TestLocality:
    def test_changes_per_table(self):
        aggregates = HistoryAggregates.of(history_of(V1, V2, V3, V4))
        assert aggregates.changes_per_table == {"hot": 3, "mild": 1}
        assert aggregates.total_post_initial_changes == 4

    def test_unchanged_table_fraction(self):
        aggregates = HistoryAggregates.of(history_of(V1, V2, V3, V4))
        # cold never changes: 1 of 3 tables
        assert aggregates.unchanged_table_fraction == pytest.approx(1 / 3)

    def test_change_concentration(self):
        aggregates = HistoryAggregates.of(history_of(V1, V2, V3, V4))
        # top 1 table (20% of 3 rounds to 1) holds 3 of 4 changes
        assert aggregates.change_concentration(fraction=0.2) == (
            pytest.approx(0.75)
        )
        assert aggregates.change_concentration(fraction=1.0) == 1.0

    def test_concentration_without_changes_raises(self):
        aggregates = HistoryAggregates.of(history_of(V1, V1))
        with pytest.raises(ValueError):
            aggregates.change_concentration()

    def test_dropped_tables_stay_in_universe(self):
        drop = V1 + "DROP TABLE cold;"
        aggregates = HistoryAggregates.of(history_of(V1, drop))
        assert "cold" in aggregates.all_tables
        assert aggregates.changes_per_table["cold"] == 2  # x, y deleted

    def test_as_dict_keys(self):
        data = HistoryAggregates.of(history_of(V1, V2)).as_dict()
        assert data["versions"] == 2
        assert data["post_initial_changes"] == 1
        assert "top20_change_share" in data


class TestGrowthVsRestructuring:
    def test_split(self):
        growth, shrink, mutate = growth_vs_restructuring(
            history_of(V1, V2, V3, V4)
        )
        assert growth == 2   # columns c, d
        assert shrink == 1   # column a
        assert mutate == 1   # m type change

    def test_initial_commit_excluded(self):
        growth, shrink, mutate = growth_vs_restructuring(history_of(V1))
        assert (growth, shrink, mutate) == (0, 0, 0)
