"""Timing-accounting semantics: sum stages, set-once wall total,
artifact counters.

The regression fixed here: ``total`` used to be recorded with the same
sum semantics as worker stages, so a caller that timed corpus
generation separately could fold the already-included wall clock in
twice.  ``record_wall`` *assigns* the total; only worker stages sum.
"""

import pytest

from repro.analysis.study import canonical_study
from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.perf.timing import STAGE_ORDER, ArtifactStats, StudyTimings
from repro.pipeline.store import configure_store


class TestRecordSemantics:
    def test_record_sums(self):
        timings = StudyTimings()
        timings.record("mine", 1.0)
        timings.record("mine", 2.5)
        assert timings.stages["mine"] == 3.5

    def test_record_wall_assigns(self):
        timings = StudyTimings()
        timings.record_wall(5.0)
        timings.record_wall(7.0)
        assert timings.stages["total"] == 7.0

    def test_wall_total_survives_stage_records(self):
        # the double-count shape: stages recorded first, then the one
        # owner of the whole-run clock sets total exactly once
        timings = StudyTimings()
        timings.record("generate", 2.0)
        timings.record("mine", 3.0)
        timings.record_wall(6.0)
        assert timings.stages["total"] == 6.0

    def test_ordered_stages_follow_pipeline_order(self):
        timings = StudyTimings()
        for name in ("total", "figures", "mine", "custom", "generate"):
            timings.record(name, 1.0)
        names = [name for name, _ in timings.ordered_stages()]
        assert names == ["generate", "mine", "figures", "total", "custom"]

    def test_stage_order_covers_the_stage_graph(self):
        from repro.pipeline import STAGE_NAMES

        assert STAGE_ORDER == (*STAGE_NAMES, "total")


class TestArtifactAccounting:
    def test_artifact_stats_add(self):
        total = ArtifactStats(hits=1) + ArtifactStats(recomputes=2)
        assert (total.hits, total.recomputes) == (1, 2)
        assert total.as_dict() == {"hits": 1, "recomputes": 2}

    def test_record_artifact_accumulates_per_stage(self):
        timings = StudyTimings()
        timings.record_artifact("mine", hit=True)
        timings.record_artifact("mine", hit=False)
        timings.record_artifact("analyze", hit=True)
        assert timings.artifacts["mine"] == ArtifactStats(1, 1)
        totals = timings.artifact_totals
        assert (totals.hits, totals.recomputes) == (2, 1)

    def test_merge_folds_artifact_counts(self):
        driver, worker = StudyTimings(), StudyTimings()
        driver.record_artifact("mine", hit=True)
        worker.record_artifact("mine", hit=False)
        driver.merge(worker)
        assert driver.artifacts["mine"] == ArtifactStats(1, 1)

    def test_as_dict_omits_store_block_for_fused_runs(self):
        # fused-engine runs never touch the store; their BENCH payload
        # keeps its historical shape
        assert "artifact_store" not in StudyTimings().as_dict()

    def test_as_dict_store_block(self):
        timings = StudyTimings()
        timings.record_artifact("analyze", hit=True)
        timings.record_artifact("figures", hit=False)
        block = timings.as_dict()["artifact_store"]
        assert block["hits"] == 1
        assert block["recomputes"] == 1
        assert block["hit_rate"] == 0.5
        assert block["stages"]["analyze"] == {"hits": 1, "recomputes": 0}

    def test_render_mentions_warm_stages(self):
        timings = StudyTimings()
        timings.record_artifact("analyze", hit=True)
        assert "artifact store: 1 hits / 0 recomputes" in timings.render()
        assert "warm: analyze" in timings.render()


class TestCanonicalStudyTotal:
    @pytest.fixture(autouse=True)
    def _fresh_state(self):
        reset_recorder()
        reset_metrics()
        canonical_study.cache_clear()
        yield
        configure_store(None)
        canonical_study.cache_clear()
        reset_recorder()
        reset_metrics()

    def test_total_is_wall_clock_not_a_double_count(self):
        # pin a tiny corpus through the pipeline's own store seeding
        from repro.pipeline import MemoryStore, Pipeline

        pipe = Pipeline(scale=16, store=MemoryStore())
        study = pipe.study()
        timings = study.timings
        total = timings.stages["total"]
        generate = timings.stages["generate"]
        mine = timings.stages["mine"]
        # the old bug added generation onto an already-complete wall
        # total; the fixed total is one wall clock >= any single stage
        assert total >= generate
        assert total >= timings.stages["analyze"]
        # serial: summed worker seconds cannot exceed the enclosing wall
        assert mine <= total * 1.05

    def test_canonical_study_is_memoised(self, monkeypatch):
        import repro.pipeline.graph as graph

        calls: list[dict] = []
        sentinel = object()

        def fake_pipeline_study(**kwargs):
            calls.append(kwargs)
            return sentinel

        monkeypatch.setattr(graph, "pipeline_study", fake_pipeline_study)
        assert canonical_study(12345) is sentinel
        assert canonical_study(12345) is sentinel  # lru_cache, one compute
        assert calls == [{"seed": 12345, "jobs": 1}]
