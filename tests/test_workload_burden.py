"""Unit tests for workload generation and the burden replay."""

import random

import pytest

from repro.analysis import replay_burden
from repro.mining import SchemaHistory
from repro.querydep import generate_workload, validate_queries
from repro.schema import Schema
from repro.sqlparser import parse_schema
from repro.vcs import FileVersion, synthetic_sha, utc

SCHEMA = parse_schema(
    """
    CREATE TABLE users (id INT, name VARCHAR(40), email TEXT,
        PRIMARY KEY (id));
    CREATE TABLE posts (pid INT, body TEXT, author INT,
        PRIMARY KEY (pid),
        FOREIGN KEY (author) REFERENCES users (id));
    """
).schema


class TestGenerateWorkload:
    def test_size_and_files(self):
        workload = generate_workload(SCHEMA, random.Random(1), n_queries=12)
        assert len(workload) == 12
        assert all(q.file == "workload.py" for q in workload)

    def test_workload_validates_against_its_schema(self):
        for seed in range(5):
            workload = generate_workload(
                SCHEMA, random.Random(seed), n_queries=25
            )
            report = validate_queries(workload, SCHEMA)
            assert report.ok, [str(i) for i in report]

    def test_star_share(self):
        workload = generate_workload(
            SCHEMA, random.Random(2), n_queries=200, star_share=0.5
        )
        stars = sum(1 for q in workload if q.text.startswith("SELECT *"))
        assert 60 <= stars <= 140

    def test_mixes_dml_kinds(self):
        workload = generate_workload(SCHEMA, random.Random(3), n_queries=60)
        kinds = {q.kind for q in workload}
        assert {"SELECT", "INSERT", "UPDATE"} <= kinds

    def test_fk_join_uses_both_tables(self):
        workload = generate_workload(
            SCHEMA, random.Random(4), n_queries=100
        )
        joins = [q for q in workload if "JOIN" in q.text]
        assert joins
        assert any(
            "users" in q.text and "posts" in q.text for q in joins
        )

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(Schema(), random.Random(1))

    def test_deterministic(self):
        a = generate_workload(SCHEMA, random.Random(9), n_queries=10)
        b = generate_workload(SCHEMA, random.Random(9), n_queries=10)
        assert [q.text for q in a] == [q.text for q in b]


def history_of(*ddl_versions):
    return SchemaHistory.from_file_versions(
        [
            FileVersion(synthetic_sha(i), utc(2020, 1 + i), text)
            for i, text in enumerate(ddl_versions)
        ]
    )


V1 = "CREATE TABLE users (id INT, name VARCHAR(40), email TEXT);"
V2 = "CREATE TABLE users (id INT, name VARCHAR(40));"  # email dropped
V3 = V2 + "CREATE TABLE tags (tid INT);"                # pure growth


class TestReplayBurden:
    def test_breaking_transition_counts(self):
        summary = replay_burden(
            history_of(V1, V2), n_queries=40, seed=11
        )
        assert len(summary.transitions) == 1
        assert summary.total_activity == 1
        # with 40 queries over 1 table, some reference 'email'
        assert summary.total_breaks >= 1

    def test_growth_transition_is_cheap(self):
        summary = replay_burden(
            history_of(V2, V3), n_queries=40, seed=11
        )
        # a new empty-referenced table breaks nothing
        assert summary.total_breaks == 0

    def test_cosmetic_transition_is_free(self):
        summary = replay_burden(
            history_of(V1, "-- cosmetic\n" + V1), n_queries=10
        )
        assert summary.total_affected == 0

    def test_repair_mode_changes_outcome(self):
        # V1 -> V2 breaks email queries; V2 -> V1' (re-add) would only
        # drift for repaired workloads but keep breaking unrepaired ones
        history = history_of(V1, V2, V1)
        repaired = replay_burden(history, n_queries=40, seed=5)
        frozen = replay_burden(
            history, n_queries=40, seed=5, repair=False
        )
        assert repaired.workload_size == frozen.workload_size
        # the unrepaired workload can never break more than once per
        # query per transition, but repaired workloads track the schema
        assert repaired.total_breaks <= frozen.total_breaks + 40

    def test_rates(self):
        summary = replay_burden(history_of(V1, V2), n_queries=40, seed=11)
        assert summary.breaks_per_change == summary.total_breaks / 1
        assert 0 <= summary.affected_per_change <= 40

    def test_zero_activity_history(self):
        summary = replay_burden(history_of(V1), n_queries=5)
        assert summary.total_activity == 0
        assert summary.breaks_per_change == 0.0
