"""CLI surface of the stage pipeline: --store-dir, status, invalidate."""

import pytest

from repro.cli import main
from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.pipeline.store import configure_store


@pytest.fixture(autouse=True)
def _isolated_global_state():
    """--store-dir swaps the process-global store and exports
    REPRO_STORE_DIR; undo both so later tests see the default."""
    reset_recorder()
    reset_metrics()
    yield
    configure_store(None)
    reset_recorder()
    reset_metrics()


def _study_args(store_dir) -> list[str]:
    return [
        "study", "--figure", "headline", "--seed", "77", "--scale", "32",
        "--store-dir", str(store_dir),
    ]


class TestStoreDirStudy:
    def test_cold_and_warm_output_identical(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        cold = capsys.readouterr().out
        assert "projects: 7" in cold

        assert main(_study_args(store_dir)) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_store_dir_materialises_artifacts(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert list(store_dir.glob("objects/*/*.pkl"))
        # one flag configures both layers: the parse cache lands inside
        assert (store_dir / "parse-cache").is_dir()


class TestPipelineStatus:
    def test_cold_status_on_memory_store(self, capsys):
        assert main(["pipeline", "status", "--seed", "77"]) == 0
        out = capsys.readouterr().out
        assert "store: memory" in out
        assert out.count("cold") == 6
        assert "warm" not in out

    def test_status_reflects_a_previous_run(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "status", "--seed", "77", "--scale", "32",
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert f"store: dir at {store_dir}" in out
        assert out.count("warm") == 5  # report not rendered by `study`
        lines = [line for line in out.splitlines() if "report" in line]
        assert "cold" in lines[0]


class TestPipelineInvalidate:
    def test_unknown_stage_is_a_usage_error(self, capsys):
        assert main(["pipeline", "invalidate", "figments"]) == 2
        err = capsys.readouterr().err
        assert "unknown stage 'figments'" in err
        assert "generate" in err  # the valid names are listed

    def test_invalidate_stage_and_dependents(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", "analyze", "--seed", "77",
            "--scale", "32", "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "invalidated analyze: 3 artifact(s) removed" in out

    def test_invalidate_all(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", "--seed", "77", "--scale", "32",
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "invalidated all stages: 5 artifact(s) removed" in out
        assert not list(store_dir.glob("objects/*/*.pkl"))


class TestStoreDirReport:
    def test_report_replays_byte_identical(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        cold_path = tmp_path / "cold.md"
        warm_path = tmp_path / "warm.md"
        base = ["report", "--seed", "77", "--scale", "32",
                "--store-dir", str(store_dir)]
        assert main([*base, "--out", str(cold_path)]) == 0
        assert main([*base, "--out", str(warm_path)]) == 0
        capsys.readouterr()
        assert warm_path.read_bytes() == cold_path.read_bytes()
