"""CLI surface of the sharded pipeline: --store-dir, status (with
--shards), invalidate (stage or --project), drift warnings."""

import pytest

from repro.cli import main
from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.pipeline.store import configure_store

#: seed 77 at scale 32 plans 7 projects; the first is stable by
#: construction (corpus_specs is deterministic in the seed).
SEED_ARGS = ["--seed", "77", "--scale", "32"]
N_PROJECTS = 7
FIRST_PROJECT = "bitforge/scheduler-000"


@pytest.fixture(autouse=True)
def _isolated_global_state():
    """--store-dir swaps the process-global store and exports
    REPRO_STORE_DIR; undo both so later tests see the default."""
    reset_recorder()
    reset_metrics()
    yield
    configure_store(None)
    reset_recorder()
    reset_metrics()


def _study_args(store_dir) -> list[str]:
    return [
        "study", "--figure", "headline", *SEED_ARGS,
        "--store-dir", str(store_dir),
    ]


class TestStoreDirStudy:
    def test_cold_and_warm_output_identical(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        cold = capsys.readouterr().out
        assert "projects: 7" in cold

        assert main(_study_args(store_dir)) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_store_dir_materialises_artifacts(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert list(store_dir.glob("objects/*/*.pkl"))
        # one flag configures both layers: the parse cache lands inside
        assert (store_dir / "parse-cache").is_dir()


class TestPipelineStatus:
    def test_cold_status_on_memory_store(self, capsys):
        assert main(["pipeline", "status", *SEED_ARGS]) == 0
        out = capsys.readouterr().out
        assert "store: memory" in out
        assert out.count("cold") == 7  # one row per stage
        assert "warm" not in out

    def test_status_reflects_a_previous_run(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "status", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert f"store: dir at {store_dir}" in out
        # six warm stages; report is not rendered by `study`
        assert out.count("warm") == 6
        assert f"{N_PROJECTS}/{N_PROJECTS}" in out  # full map families
        lines = [line for line in out.splitlines() if "report" in line]
        assert "cold" in lines[0]

    def test_shards_flag_lists_per_project_state(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "status", *SEED_ARGS, "--shards",
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert FIRST_PROJECT in out
        shard_lines = [
            line for line in out.splitlines() if line.startswith("bitforge")
        ]
        assert shard_lines and "warm" in shard_lines[0]

    def test_stale_stage_version_warns(self, tmp_path, capsys):
        from repro.pipeline import DirStore, Pipeline

        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        # simulate drift: the figures artifact was stored by an older
        # figures module (different source digest, same code_version)
        pipe = Pipeline(seed=77, scale=32, store=DirStore(store_dir))
        key = pipe.fingerprint("figures")
        artifact = pipe.store.get(key)
        meta = dict(artifact.meta)
        meta["source_digest"] = "0" * 64
        pipe.store.put(key, artifact.payload, meta=meta)

        assert main([
            "pipeline", "status", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "stage-version-stale" in out
        assert "figures" in out.split("stage-version-stale", 1)[1]

    def test_no_drift_warning_on_clean_store(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert main([
            "pipeline", "status", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        assert "stage-version-stale" not in capsys.readouterr().out


class TestPipelineInvalidate:
    def test_unknown_stage_is_a_usage_error(self, capsys):
        assert main(["pipeline", "invalidate", "figments"]) == 2
        err = capsys.readouterr().err
        assert "unknown stage 'figments'" in err
        assert "generate" in err  # the valid names are listed

    def test_unknown_project_is_a_usage_error(self, capsys):
        assert main([
            "pipeline", "invalidate", *SEED_ARGS,
            "--project", "no/such-project",
        ]) == 2
        assert "unknown project" in capsys.readouterr().err

    def test_stage_and_project_together_is_a_usage_error(self, capsys):
        assert main([
            "pipeline", "invalidate", "analyze", *SEED_ARGS,
            "--project", FIRST_PROJECT,
        ]) == 2
        assert "not both" in capsys.readouterr().err

    def test_invalidate_stage_and_dependents(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", "analyze", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        # 7 analyze shards + aggregate/figures/statistics
        removed = N_PROJECTS + 3
        assert f"invalidated analyze: {removed} artifact(s) removed" in out

    def test_invalidate_project(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", *SEED_ARGS,
            "--project", FIRST_PROJECT,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        # 3 map shards + aggregate/figures/statistics
        assert (
            f"invalidated project '{FIRST_PROJECT}': "
            "6 artifact(s) removed" in out
        )

        assert main([
            "pipeline", "status", *SEED_ARGS, "--shards",
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "partial" in out
        shard_lines = [
            line for line in out.splitlines() if line.startswith("bitforge")
        ]
        assert shard_lines and "cold" in shard_lines[0]

    def test_invalidate_all(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        # 3 map stages x 7 shards + aggregate/figures/statistics
        removed = 3 * N_PROJECTS + 3
        assert (
            f"invalidated all stages: {removed} artifact(s) removed" in out
        )
        assert not list(store_dir.glob("objects/*/*.pkl"))


class TestStoreDirReport:
    def test_report_replays_byte_identical(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        cold_path = tmp_path / "cold.md"
        warm_path = tmp_path / "warm.md"
        base = ["report", *SEED_ARGS, "--store-dir", str(store_dir)]
        assert main([*base, "--out", str(cold_path)]) == 0
        assert main([*base, "--out", str(warm_path)]) == 0
        capsys.readouterr()
        assert warm_path.read_bytes() == cold_path.read_bytes()
