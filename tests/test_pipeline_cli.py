"""CLI surface of the sharded pipeline: --store-dir, status (with
--shards), invalidate (stage or --project), drift warnings."""

import pytest

from repro.cli import main
from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.pipeline.store import configure_store

#: seed 77 at scale 32 plans 7 projects; the first is stable by
#: construction (corpus_specs is deterministic in the seed).
SEED_ARGS = ["--seed", "77", "--scale", "32"]
N_PROJECTS = 7
FIRST_PROJECT = "bitforge/scheduler-000"


@pytest.fixture(autouse=True)
def _isolated_global_state():
    """--store-dir swaps the process-global store and exports
    REPRO_STORE_DIR; undo both so later tests see the default."""
    reset_recorder()
    reset_metrics()
    yield
    configure_store(None)
    reset_recorder()
    reset_metrics()


def _study_args(store_dir) -> list[str]:
    return [
        "study", "--figure", "headline", *SEED_ARGS,
        "--store-dir", str(store_dir),
    ]


class TestStoreDirStudy:
    def test_cold_and_warm_output_identical(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        cold = capsys.readouterr().out
        assert "projects: 7" in cold

        assert main(_study_args(store_dir)) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_store_dir_materialises_artifacts(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert list(store_dir.glob("objects/*/*.pkl"))
        # one flag configures both layers: the parse cache lands inside
        assert (store_dir / "parse-cache").is_dir()


class TestPipelineStatus:
    def test_cold_status_on_memory_store(self, capsys):
        assert main(["pipeline", "status", *SEED_ARGS]) == 0
        out = capsys.readouterr().out
        assert "store: memory" in out
        assert out.count("cold") == 7  # one row per stage
        assert "warm" not in out

    def test_status_reflects_a_previous_run(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "status", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert f"store: dir at {store_dir}" in out
        # six warm stages; report is not rendered by `study`
        assert out.count("warm") == 6
        assert f"{N_PROJECTS}/{N_PROJECTS}" in out  # full map families
        lines = [line for line in out.splitlines() if "report" in line]
        assert "cold" in lines[0]

    def test_shards_flag_lists_per_project_state(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "status", *SEED_ARGS, "--shards",
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert FIRST_PROJECT in out
        shard_lines = [
            line for line in out.splitlines() if line.startswith("bitforge")
        ]
        assert shard_lines and "warm" in shard_lines[0]

    def test_stale_stage_version_warns(self, tmp_path, capsys):
        from repro.pipeline import DirStore, Pipeline

        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        # simulate drift: the figures artifact was stored by an older
        # figures module (different source digest, same code_version)
        pipe = Pipeline(seed=77, scale=32, store=DirStore(store_dir))
        key = pipe.fingerprint("figures")
        artifact = pipe.store.get(key)
        meta = dict(artifact.meta)
        meta["source_digest"] = "0" * 64
        pipe.store.put(key, artifact.payload, meta=meta)

        assert main([
            "pipeline", "status", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "stage-version-stale" in out
        assert "figures" in out.split("stage-version-stale", 1)[1]

    def test_no_drift_warning_on_clean_store(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert main([
            "pipeline", "status", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        assert "stage-version-stale" not in capsys.readouterr().out


class TestFailOnStale:
    """--fail-on-stale turns the drift warning into a CI gate."""

    def _drift_the_figures_stage(self, store_dir):
        from repro.pipeline import DirStore, Pipeline

        pipe = Pipeline(seed=77, scale=32, store=DirStore(store_dir))
        key = pipe.fingerprint("figures")
        artifact = pipe.store.get(key)
        meta = dict(artifact.meta)
        meta["source_digest"] = "0" * 64
        pipe.store.put(key, artifact.payload, meta=meta)

    def test_clean_store_still_exits_zero(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert main([
            "pipeline", "status", *SEED_ARGS, "--fail-on-stale",
            "--store-dir", str(store_dir),
        ]) == 0

    def test_drift_exits_nonzero_but_still_reports(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        self._drift_the_figures_stage(store_dir)
        assert main([
            "pipeline", "status", *SEED_ARGS, "--fail-on-stale",
            "--store-dir", str(store_dir),
        ]) == 1
        # the full status table and the warning still print: the gate
        # changes the exit code, never the diagnostics
        out = capsys.readouterr().out
        assert "stage-version-stale" in out
        assert "aggregate" in out

    def test_drift_exits_nonzero_in_json_mode(self, tmp_path, capsys):
        import json

        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        self._drift_the_figures_stage(store_dir)
        assert main([
            "pipeline", "status", "--json", *SEED_ARGS, "--fail-on-stale",
            "--store-dir", str(store_dir),
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["drift"][0]["stage"] == "figures"

    def test_without_the_flag_drift_stays_advisory(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        self._drift_the_figures_stage(store_dir)
        assert main([
            "pipeline", "status", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        assert "stage-version-stale" in capsys.readouterr().out


class TestPipelineStatusJson:
    def test_json_payload_shape(self, tmp_path, capsys):
        import json

        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "status", "--json", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["store"]["kind"] == "dir"
        assert payload["store"]["dir"] == str(store_dir)
        assert payload["seed"] == 77 and payload["scale"] == 32
        assert len(payload["stages"]) == 7
        by_stage = {row["stage"]: row for row in payload["stages"]}
        assert by_stage["aggregate"]["warm"] is True
        assert by_stage["report"]["warm"] is False
        assert payload["drift"] == []
        assert "shards" not in payload

    def test_json_with_shards(self, capsys):
        import json

        assert main([
            "pipeline", "status", "--json", "--shards", *SEED_ARGS,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["shards"]) == N_PROJECTS
        assert payload["shards"][0]["project"] == FIRST_PROJECT


class TestPipelineExplain:
    def test_cold_store_explains_cold(self, capsys):
        assert main(["pipeline", "explain", "aggregate", *SEED_ARGS]) == 0
        out = capsys.readouterr().out
        assert "aggregate: cold — no prior artifact" in out

    def test_warm_store_explains_warm(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert main([
            "pipeline", "explain", "mine", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("warm") == N_PROJECTS + 1  # rows + summary
        assert f"{N_PROJECTS} targets: {N_PROJECTS} warm" in out

    def test_param_edit_explains_stale_with_the_cause(
        self, tmp_path, capsys
    ):
        store_dir = tmp_path / "artifacts"
        assert main([
            "report", *SEED_ARGS, "--store-dir", str(store_dir),
            "--out", str(tmp_path / "r.md"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "pipeline", "explain", "report", *SEED_ARGS,
            "--format", "html", "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "report: stale" in out
        assert "params.report_format changed (markdown→html)" in out

    def test_json_records(self, tmp_path, capsys):
        import json

        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert main([
            "pipeline", "explain", "statistics", "--json", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        (record,) = json.loads(capsys.readouterr().out)
        assert record["stage"] == "statistics"
        assert record["state"] == "warm"
        assert len(record["key"]) == 64

    def test_explain_emits_provenance_events(self, tmp_path, capsys):
        import json

        from repro.obs.events import validate_event_log

        store_dir = tmp_path / "artifacts"
        log_path = tmp_path / "events.jsonl"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()
        assert main([
            "pipeline", "explain", "aggregate", *SEED_ARGS,
            "--store-dir", str(store_dir),
            "--log-json", str(log_path),
        ]) == 0
        records = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        kinds = [r["event"] for r in records]
        assert "provenance" in kinds
        prov = next(r for r in records if r["event"] == "provenance")
        assert prov["stage"] == "aggregate"
        assert prov["state"] == "warm"
        count, problems = validate_event_log(log_path)
        assert count == len(records) and problems == []

    def test_unknown_stage_is_a_usage_error(self, capsys):
        assert main(["pipeline", "explain", "figments"]) == 2
        assert "unknown stage or project" in capsys.readouterr().err

    def test_unknown_project_is_a_usage_error(self, capsys):
        assert main([
            "pipeline", "explain", "mine", *SEED_ARGS,
            "--project", "no/such-project",
        ]) == 2
        assert "unknown stage or project" in capsys.readouterr().err

    def test_project_on_a_reduce_stage_is_a_usage_error(self, capsys):
        assert main([
            "pipeline", "explain", "aggregate", *SEED_ARGS,
            "--project", FIRST_PROJECT,
        ]) == 2
        assert "per-project" in capsys.readouterr().err


class TestCrossProcessReplay:
    """Satellite 3: a warm run served from a store written by a
    *different process* replays that run's warnings and metrics."""

    def test_warm_run_replays_the_foreign_cold_run(self, tmp_path):
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        store_dir = tmp_path / "artifacts"
        manifest = tmp_path / "cold.json"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_STORE_DIR", None)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "study", *SEED_ARGS,
             "--store-dir", str(store_dir), "--manifest", str(manifest)],
            capture_output=True, text=True, env=env, cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        cold = json.loads(manifest.read_text())

        from repro.pipeline import DirStore, Pipeline

        pipe = Pipeline(seed=77, scale=32, store=DirStore(store_dir))
        study = pipe.study()
        # nothing recomputed: the foreign artifacts answered everything
        assert study.timings.artifact_totals.recomputes == 0
        # the cold process's warnings replay one-for-one
        assert len(study.warnings) == cold["warning_count"]
        # ... and so do its metrics: the mining counters below were
        # only ever computed in the writer process
        counters = study.metrics.counters
        cold_counters = cold["metrics"]["counters"]
        mining = [c for c in cold_counters if c.startswith("changes.")]
        assert mining
        for counter in mining:
            assert counters.get(counter) == cold_counters[counter], counter
        assert counters.get("artifact.hit") == 3


class TestPipelineInvalidate:
    def test_unknown_stage_is_a_usage_error(self, capsys):
        assert main(["pipeline", "invalidate", "figments"]) == 2
        err = capsys.readouterr().err
        assert "unknown stage 'figments'" in err
        assert "generate" in err  # the valid names are listed

    def test_unknown_project_is_a_usage_error(self, capsys):
        assert main([
            "pipeline", "invalidate", *SEED_ARGS,
            "--project", "no/such-project",
        ]) == 2
        assert "unknown project" in capsys.readouterr().err

    def test_stage_and_project_together_is_a_usage_error(self, capsys):
        assert main([
            "pipeline", "invalidate", "analyze", *SEED_ARGS,
            "--project", FIRST_PROJECT,
        ]) == 2
        assert "not both" in capsys.readouterr().err

    def test_invalidate_stage_and_dependents(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", "analyze", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        # 7 analyze shards + aggregate/figures/statistics
        removed = N_PROJECTS + 3
        assert f"invalidated analyze: {removed} artifact(s) removed" in out

    def test_invalidate_project(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", *SEED_ARGS,
            "--project", FIRST_PROJECT,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        # 3 map shards + aggregate/figures/statistics
        assert (
            f"invalidated project '{FIRST_PROJECT}': "
            "6 artifact(s) removed" in out
        )

        assert main([
            "pipeline", "status", *SEED_ARGS, "--shards",
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "partial" in out
        shard_lines = [
            line for line in out.splitlines() if line.startswith("bitforge")
        ]
        assert shard_lines and "cold" in shard_lines[0]

    def test_invalidate_all(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        assert main(_study_args(store_dir)) == 0
        capsys.readouterr()

        assert main([
            "pipeline", "invalidate", *SEED_ARGS,
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        # 3 map stages x 7 shards + aggregate/figures/statistics
        removed = 3 * N_PROJECTS + 3
        assert (
            f"invalidated all stages: {removed} artifact(s) removed" in out
        )
        assert not list(store_dir.glob("objects/*/*.pkl"))


class TestStoreDirReport:
    def test_report_replays_byte_identical(self, tmp_path, capsys):
        store_dir = tmp_path / "artifacts"
        cold_path = tmp_path / "cold.md"
        warm_path = tmp_path / "warm.md"
        base = ["report", *SEED_ARGS, "--store-dir", str(store_dir)]
        assert main([*base, "--out", str(cold_path)]) == 0
        assert main([*base, "--out", str(warm_path)]) == 0
        capsys.readouterr()
        assert warm_path.read_bytes() == cold_path.read_bytes()
