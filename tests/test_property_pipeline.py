"""Property-based tests over the full generation → mining pipeline.

Hypothesis draws arbitrary project identities (taxon, seed, duration,
vendor) and the invariants that every downstream consumer relies on are
checked on the mined result — not on the generator's internals.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_project
from repro.coevolution import CoevolutionMeasures
from repro.corpus import ProjectSpec, generate_project, profile_for, screen
from repro.heartbeat import Month, ZeroTotalError, is_monotone
from repro.mining import mine_project
from repro.taxa import Taxon

specs = st.builds(
    ProjectSpec,
    name=st.just("prop/project"),
    taxon=st.sampled_from(list(Taxon)),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    vendor=st.sampled_from(["mysql", "postgres"]),
    duration_months=st.integers(min_value=1, max_value=30),
    start=st.builds(
        Month,
        year=st.integers(min_value=2005, max_value=2020),
        month=st.integers(min_value=1, max_value=12),
    ),
)


class TestPipelineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(specs)
    def test_mined_project_invariants(self, spec):
        project = generate_project(spec, profile_for(spec.taxon))
        history = mine_project(project.repository)

        # exact duration
        assert history.duration_months == spec.duration_months
        # both heartbeats have positive totals (initial commit + births)
        assert history.project_heartbeat.total > 0
        assert history.schema_heartbeat.total > 0
        # at least two DDL versions (the elicitation threshold)
        assert history.schema_history.commit_count >= 2
        # the initiating transition carries the whole initial schema
        initial = history.schema_history.transitions[0]
        assert initial.activity == (
            history.schema_history.versions[0].attribute_count
        )

    @settings(max_examples=25, deadline=None)
    @given(specs)
    def test_measures_are_well_formed(self, spec):
        project = generate_project(spec, profile_for(spec.taxon))
        history = mine_project(project.repository)
        try:
            measures = analyze_project(history)
        except ZeroTotalError:
            return  # impossible by construction, but tolerated
        joint = measures.joint
        assert is_monotone(joint.schema)
        assert is_monotone(joint.project)
        assert joint.schema[-1] == 1.0 or abs(joint.schema[-1] - 1) < 1e-9
        assert 0 <= measures.sync10 <= 1
        for alpha, fraction in measures.coevolution.attainment.items():
            assert 0 < fraction <= 1
        if spec.duration_months == 1:
            assert measures.coevolution.advance_over_source is None

    @settings(max_examples=20, deadline=None)
    @given(specs)
    def test_every_generated_project_is_eligible(self, spec):
        project = generate_project(spec, profile_for(spec.taxon))
        assert screen(project.repository).accepted

    @settings(max_examples=20, deadline=None)
    @given(specs)
    def test_frozen_taxon_never_changes_logically(self, spec):
        if spec.taxon is not Taxon.FROZEN:
            return
        project = generate_project(spec, profile_for(spec.taxon))
        history = mine_project(project.repository)
        assert sum(history.schema_heartbeat.values[1:]) == 0
        measures = CoevolutionMeasures.of(history.joint_progress())
        # a frozen schema attains everything at its first version
        assert measures.attainment[1.00] <= (
            # the DDL may appear late; its birth month bounds attainment
            1.0
        )
