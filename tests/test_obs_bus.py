"""The telemetry bus: envelopes, ordering, replay ring, drop policy."""

import threading

import pytest

from repro.obs.bus import (
    BUS_SCHEMA_VERSION,
    DEFAULT_QUEUE_CAPACITY,
    TelemetryBus,
    get_bus,
    publish,
    reset_bus,
)


@pytest.fixture(autouse=True)
def _fresh_bus():
    reset_bus()
    yield
    reset_bus()


class TestEnvelopes:
    def test_publish_wraps_in_schema_versioned_envelope(self):
        bus = TelemetryBus()
        envelope = bus.publish("progress", {"done": 3})
        assert envelope["kind"] == "progress"
        assert envelope["schema"] == BUS_SCHEMA_VERSION
        assert envelope["data"] == {"done": 3}
        assert envelope["id"] == 1
        assert envelope["ts"] > 0

    def test_ids_are_monotonic_across_kinds(self):
        bus = TelemetryBus()
        ids = [
            bus.publish(kind, {})["id"]
            for kind in ("span", "warning", "progress", "span")
        ]
        assert ids == [1, 2, 3, 4]
        assert bus.last_id == 4

    def test_module_level_publish_uses_active_bus(self):
        envelope = publish("warning", {"code": "x"})
        assert get_bus().replay()[-1] is envelope

    def test_concurrent_publishers_never_share_an_id(self):
        bus = TelemetryBus()

        def hammer():
            for _ in range(200):
                bus.publish("span", {})

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert bus.published == 800
        assert bus.last_id == 800


class TestSinks:
    def test_sink_sees_publish_order(self):
        bus = TelemetryBus()
        seen = []
        bus.add_sink(seen.append)
        for n in range(5):
            bus.publish("progress", {"n": n})
        assert [e["data"]["n"] for e in seen] == [0, 1, 2, 3, 4]

    def test_kind_filter_drops_other_kinds(self):
        bus = TelemetryBus()
        seen = []
        bus.add_sink(seen.append, kinds=("span", "warning"))
        bus.publish("span", {})
        bus.publish("artifact", {})
        bus.publish("metrics", {})
        bus.publish("warning", {})
        assert [e["kind"] for e in seen] == ["span", "warning"]

    def test_remove_sink_stops_delivery(self):
        bus = TelemetryBus()
        seen = []
        sink = bus.add_sink(seen.append)
        bus.publish("span", {})
        bus.remove_sink(sink)
        bus.publish("span", {})
        assert len(seen) == 1

    def test_active_tracks_consumers(self):
        bus = TelemetryBus()
        assert not bus.active
        sink = bus.add_sink(lambda e: None)
        assert bus.active
        bus.remove_sink(sink)
        assert not bus.active
        sub = bus.subscribe()
        assert bus.active
        sub.close()
        assert not bus.active


class TestRingReplay:
    def test_replay_returns_retained_envelopes_in_order(self):
        bus = TelemetryBus(capacity=10)
        for n in range(5):
            bus.publish("span", {"n": n})
        assert [e["id"] for e in bus.replay()] == [1, 2, 3, 4, 5]
        assert [e["id"] for e in bus.replay(last_id=3)] == [4, 5]

    def test_ring_is_bounded_and_tracks_oldest(self):
        bus = TelemetryBus(capacity=3)
        for n in range(10):
            bus.publish("span", {"n": n})
        assert [e["id"] for e in bus.replay()] == [8, 9, 10]
        assert bus.oldest_retained_id == 8
        # a replay request older than the horizon yields what remains
        assert [e["id"] for e in bus.replay(last_id=2)] == [8, 9, 10]

    def test_capacity_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUS_CAPACITY", "7")
        assert TelemetryBus().capacity == 7
        monkeypatch.setenv("REPRO_BUS_CAPACITY", "not-a-number")
        assert TelemetryBus().capacity == TelemetryBus(1024).capacity

    def test_subscribe_seeds_replay_past_last_id(self):
        bus = TelemetryBus()
        for n in range(4):
            bus.publish("span", {"n": n})
        sub = bus.subscribe(last_id=2)
        bus.publish("span", {"n": 4})
        ids = [e["id"] for e in sub.drain()]
        assert ids == [3, 4, 5]  # replay seam is gap-free


class TestDropPolicy:
    def test_stalled_subscriber_drops_oldest(self):
        bus = TelemetryBus()
        sub = bus.subscribe(capacity=3)
        for n in range(8):
            bus.publish("span", {"n": n})
        # queue holds the freshest 3; the 5 oldest were evicted
        assert sub.pending == 3
        assert [e["id"] for e in sub.drain()] == [6, 7, 8]
        assert sub.dropped == 5
        assert bus.dropped == 5

    def test_drop_counters_are_per_subscription(self):
        bus = TelemetryBus()
        slow = bus.subscribe(capacity=2)
        fast = bus.subscribe(capacity=100)
        for n in range(6):
            bus.publish("span", {"n": n})
        assert slow.dropped == 4
        assert fast.dropped == 0
        assert bus.dropped == 4

    def test_memory_is_bounded_by_capacity(self):
        bus = TelemetryBus()
        sub = bus.subscribe(capacity=5)
        for n in range(10_000):
            bus.publish("span", {"n": n})
        assert sub.pending <= 5

    def test_default_queue_capacity(self):
        bus = TelemetryBus()
        assert bus.subscribe().capacity == DEFAULT_QUEUE_CAPACITY


class TestSubscription:
    def test_get_timeout_returns_none(self):
        sub = TelemetryBus().subscribe()
        assert sub.get(timeout=0.01) is None

    def test_close_detaches_but_queue_stays_drainable(self):
        bus = TelemetryBus()
        sub = bus.subscribe()
        bus.publish("span", {})
        sub.close()
        assert sub.closed
        bus.publish("span", {})  # no longer delivered
        assert [e["id"] for e in sub.drain()] == [1]

    def test_stats_shape(self):
        bus = TelemetryBus(capacity=4)
        bus.subscribe()
        bus.add_sink(lambda e: None)
        bus.publish("span", {})
        assert bus.stats() == {
            "published": 1,
            "dropped": 0,
            "subscribers": 1,
            "sinks": 1,
            "ring_size": 1,
            "ring_capacity": 4,
        }

    def test_reset_bus_discards_consumers(self):
        bus = get_bus()
        bus.add_sink(lambda e: None)
        fresh = reset_bus()
        assert fresh is get_bus()
        assert not fresh.active
