"""Unit tests for the text renderers."""

import pytest

from repro.analysis import (
    fig4_sync_histogram,
    fig6_advance_table,
    fig7_always_advance,
    fig8_attainment,
)
from repro.coevolution import JointProgress
from repro.report import (
    bar_chart,
    grouped_bar_chart,
    line_chart,
    render_fig4,
    render_fig6,
    render_fig7,
    render_fig8,
    render_joint_progress,
    render_table,
    scatter_chart,
)
from tests.test_analysis import fake_project


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0].endswith("bb")
        assert all(len(line) == len(lines[0]) for line in lines[:2])

    def test_title(self):
        assert render_table(["x"], [[1]], title="T").startswith("T\n")


class TestBarChart:
    def test_bars_proportional(self):
        text = bar_chart(["a", "b"], [10, 5], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_counts(self):
        text = bar_chart(["a"], [0])
        assert "# 0" not in text  # no bar, count shown
        assert " 0" in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])


class TestGroupedBarChart:
    def test_structure(self):
        text = grouped_bar_chart(
            ["g1", "g2"],
            ["s1", "s2"],
            {"s1": [1, 2], "s2": [3, 4]},
        )
        assert "g1:" in text
        assert "g2:" in text
        assert text.count("s1 |") == 2


class TestLineChart:
    def test_contains_glyphs_and_legend(self):
        text = line_chart({"up": [0.0, 0.5, 1.0], "flat": [1.0, 1.0, 1.0]})
        assert "S=up" in text
        assert "P=flat" in text
        assert "100%" in text

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": []})


class TestScatterChart:
    def test_plots_points(self):
        text = scatter_chart(
            [(0, 0, "A"), (10, 1, "B")], x_label="d", y_label="s"
        )
        assert "A" in text
        assert "B" in text

    def test_overlap_marker(self):
        text = scatter_chart([(0, 0, "A"), (0, 0, "B")])
        assert "*" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_chart([])


class TestFigureRenderers:
    @pytest.fixture()
    def projects(self):
        return [fake_project(str(i)) for i in range(6)]

    def test_fig4_text(self, projects):
        text = render_fig4(fig4_sync_histogram(projects))
        assert "Fig 4" in text
        assert "[80%-100%]" in text

    def test_fig6_text(self, projects):
        text = render_fig6(fig6_advance_table(projects))
        assert "(blank)" in text
        assert "Grand Total" in text

    def test_fig7_text(self, projects):
        text = render_fig7(fig7_always_advance(projects))
        assert "Frozen" in text
        assert "Total" in text

    def test_fig8_text(self, projects):
        text = render_fig8(fig8_attainment(projects))
        assert "alpha=75%" in text
        assert "80%-100%" in text

    def test_joint_progress_text(self):
        joint = JointProgress.from_series(
            [0.2, 0.5, 1.0], [0.9, 1.0, 1.0]
        )
        text = render_joint_progress(joint, title="demo")
        assert text.startswith("demo")
        assert "S=schema" in text
