"""Unit tests for author-concentration analysis."""

import pytest

from repro.analysis import author_stats
from repro.vcs import Commit, FileChange, Repository, synthetic_sha, utc


def repo_with_commits(author_files):
    """Build a repo from [(author, [files])] entries."""
    repo = Repository(name="a")
    for i, (author, files) in enumerate(author_files):
        repo.add_commit(
            Commit(
                sha=synthetic_sha("a", i),
                author=author,
                email=f"{author}@x",
                date=utc(2020, 1, 1 + i),
                message="c",
                changes=[FileChange("M", f) for f in files],
            )
        )
    return repo


class TestAuthorStats:
    def test_single_author(self):
        repo = repo_with_commits([("ann", ["a.py"]), ("ann", ["b.py"])])
        stats = author_stats(repo)
        assert stats.authors == 1
        assert stats.top_author == "ann"
        assert stats.top_commit_share == 1.0
        assert stats.single_maintainer

    def test_shares(self):
        repo = repo_with_commits(
            [
                ("ann", ["a.py", "b.py", "c.py"]),
                ("ann", ["a.py"]),
                ("bob", ["d.py"]),
                ("ann", ["e.py"]),
            ]
        )
        stats = author_stats(repo)
        assert stats.top_commit_share == pytest.approx(0.75)
        assert stats.top_update_share == pytest.approx(5 / 6)

    def test_schema_share(self):
        repo = repo_with_commits(
            [
                ("ann", ["schema.sql", "a.py"]),
                ("bob", ["schema.sql"]),
                ("ann", ["schema.sql"]),
                ("bob", ["b.py"]),
            ]
        )
        stats = author_stats(repo, ddl_path="schema.sql")
        assert stats.schema_top_share == pytest.approx(2 / 3)

    def test_no_schema_commits(self):
        repo = repo_with_commits([("ann", ["a.py"])])
        stats = author_stats(repo, ddl_path="schema.sql")
        assert stats.schema_top_share is None

    def test_empty_repo_rejected(self):
        with pytest.raises(ValueError):
            author_stats(Repository(name="x"))

    def test_not_single_maintainer(self):
        repo = repo_with_commits(
            [("ann", ["a"]), ("bob", ["b"]), ("cyd", ["c"])]
        )
        assert not author_stats(repo).single_maintainer


class TestGeneratedCorpusConcentration:
    def test_case_study_pattern_emerges(self):
        """§3.3: a dominant maintainer is the norm in the corpus."""
        from repro.corpus import generate_corpus
        from repro.stats import median

        stats = [
            author_stats(p.repository, p.spec.ddl_path)
            for p in generate_corpus(seed=909)[::5]
        ]
        shares = [s.top_commit_share for s in stats]
        assert median(shares) >= 0.6
        # multi-contributor projects exist too
        assert any(s.authors >= 2 for s in stats)
        # schema commits are at least as concentrated as commits overall
        paired = [
            (s.schema_top_share, s.top_commit_share)
            for s in stats
            if s.schema_top_share is not None
        ]
        schema_higher = sum(1 for a, b in paired if a >= b)
        assert schema_higher >= len(paired) * 0.5
