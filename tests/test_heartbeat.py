"""Unit tests for months, heartbeats and cumulative progressions."""

import pytest

from repro.heartbeat import (
    Heartbeat,
    Month,
    ZeroTotalError,
    fraction_of_life,
    is_monotone,
    month_range,
    time_progress,
)
from repro.vcs import utc


class TestMonth:
    def test_ordering(self):
        assert Month(2015, 12) < Month(2016, 1)

    def test_subtraction(self):
        assert Month(2016, 3) - Month(2015, 12) == 3

    def test_shift_across_year(self):
        assert Month(2015, 11).shift(3) == Month(2016, 2)

    def test_shift_negative(self):
        assert Month(2016, 1).shift(-1) == Month(2015, 12)

    def test_of_datetime(self):
        assert Month.of(utc(2019, 7, 23)) == Month(2019, 7)

    def test_index_roundtrip(self):
        month = Month(2021, 6)
        assert Month.from_index(month.index) == month

    def test_invalid_month_rejected(self):
        with pytest.raises(ValueError):
            Month(2020, 13)

    def test_str(self):
        assert str(Month(2020, 3)) == "2020-03"

    def test_month_range_inclusive(self):
        months = month_range(Month(2019, 11), Month(2020, 2))
        assert len(months) == 4
        assert months[-1] == Month(2020, 2)

    def test_month_range_backwards_raises(self):
        with pytest.raises(ValueError):
            month_range(Month(2020, 2), Month(2020, 1))


class TestHeartbeatConstruction:
    def test_from_events_buckets_by_month(self):
        hb = Heartbeat.from_events(
            [
                (utc(2020, 1, 5), 2),
                (utc(2020, 1, 20), 3),
                (utc(2020, 3, 1), 1),
            ]
        )
        assert hb.start == Month(2020, 1)
        assert hb.values == [5.0, 0.0, 1.0]

    def test_explicit_span_pads(self):
        hb = Heartbeat.from_events(
            [(utc(2020, 2, 1), 4)],
            span=(Month(2020, 1), Month(2020, 4)),
        )
        assert hb.values == [0.0, 4.0, 0.0, 0.0]

    def test_event_outside_span_raises(self):
        with pytest.raises(ValueError):
            Heartbeat.from_events(
                [(utc(2020, 6, 1), 1)],
                span=(Month(2020, 1), Month(2020, 3)),
            )

    def test_no_events_no_span_raises(self):
        with pytest.raises(ValueError):
            Heartbeat.from_events([])

    def test_no_events_with_span_is_zero_heartbeat(self):
        hb = Heartbeat.from_events(
            [], span=(Month(2020, 1), Month(2020, 2))
        )
        assert hb.total == 0

    def test_month_events_accepted(self):
        hb = Heartbeat.from_events([(Month(2020, 1), 2.0)])
        assert hb.values == [2.0]

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(start=Month(2020, 1), values=[1.0, -2.0])

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            Heartbeat(start=Month(2020, 1), values=[])


class TestHeartbeatProperties:
    def test_duration_and_active_months(self):
        hb = Heartbeat(Month(2020, 1), [3, 0, 1, 0])
        assert hb.duration_months == 4
        assert hb.active_months == 2

    def test_months_and_end(self):
        hb = Heartbeat(Month(2020, 11), [1, 1, 1])
        assert hb.end == Month(2021, 1)
        assert hb.months[1] == Month(2020, 12)

    def test_cumulative(self):
        hb = Heartbeat(Month(2020, 1), [2, 0, 3])
        assert hb.cumulative() == [2, 2, 5]

    def test_cumulative_fraction_matches_paper_example(self):
        # paper §3.2: 40%, 25%, 20%, 15% -> 40%, 65%, 85%, 100%
        hb = Heartbeat(Month(2020, 1), [40, 25, 20, 15])
        assert hb.cumulative_fraction() == pytest.approx(
            [0.40, 0.65, 0.85, 1.0]
        )

    def test_cumulative_fraction_zero_total_raises(self):
        hb = Heartbeat(Month(2020, 1), [0, 0])
        with pytest.raises(ZeroTotalError):
            hb.cumulative_fraction()

    def test_cumulative_fraction_ends_at_one(self):
        hb = Heartbeat(Month(2020, 1), [1, 2, 3, 0])
        assert hb.cumulative_fraction()[-1] == pytest.approx(1.0)


class TestAlignment:
    def test_align_pads_both_sides(self):
        hb = Heartbeat(Month(2020, 3), [5.0])
        aligned = hb.aligned(Month(2020, 1), Month(2020, 5))
        assert aligned.values == [0, 0, 5.0, 0, 0]
        assert aligned.start == Month(2020, 1)

    def test_align_identity(self):
        hb = Heartbeat(Month(2020, 1), [1, 2])
        aligned = hb.aligned(hb.start, hb.end)
        assert aligned.values == hb.values

    def test_align_clipping_activity_raises(self):
        hb = Heartbeat(Month(2020, 1), [1.0, 2.0])
        with pytest.raises(ValueError):
            hb.aligned(Month(2020, 2), Month(2020, 2))

    def test_align_clipping_zeros_is_fine(self):
        hb = Heartbeat(Month(2020, 1), [0.0, 2.0])
        aligned = hb.aligned(Month(2020, 2), Month(2020, 3))
        assert aligned.values == [2.0, 0.0]


class TestTimeProgress:
    def test_ends_at_one(self):
        assert time_progress(5)[-1] == pytest.approx(1.0)

    def test_uniform_steps(self):
        assert time_progress(4) == pytest.approx([0.25, 0.5, 0.75, 1.0])

    def test_single_point(self):
        assert time_progress(1) == [1.0]

    def test_zero_points_rejected(self):
        with pytest.raises(ValueError):
            time_progress(0)


class TestFractionOfLife:
    def test_paper_example(self):
        # §6.1: attainment at month M1 of a 6-month life -> not 1/6 of the
        # raw index but the fraction of covered time-points: 2/6 with our
        # inclusive convention, 1/6 with the paper's index convention.
        # We use the inclusive convention consistently (documented).
        assert fraction_of_life(0, 6) == pytest.approx(1 / 6)

    def test_last_month_is_full_life(self):
        assert fraction_of_life(5, 6) == pytest.approx(1.0)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            fraction_of_life(6, 6)


class TestIsMonotone:
    def test_monotone(self):
        assert is_monotone([0.0, 0.1, 0.1, 0.9])

    def test_not_monotone(self):
        assert not is_monotone([0.0, 0.2, 0.1])

    def test_tolerates_float_noise(self):
        assert is_monotone([0.3, 0.3 - 1e-15])
