"""Warning events replace the pipeline's formerly-silent skips.

Each anomaly that used to disappear — a ``find_ddl_path`` tie-break, a
parse-cache directory degrading to memory-only, an unparseable DDL
version, an empty history — must now leave a typed warning record on
the active recorder, where the run manifest picks it up.
"""

import pytest

from repro.mining.history import SchemaHistory
from repro.mining.miner import find_ddl_path
from repro.obs.events import get_recorder, reset_recorder
from repro.obs.metrics import get_metrics, reset_metrics
from repro.perf.cache import ParseCache
from repro.perf.parallel import mine_and_analyze
from repro.vcs import Commit, FileChange, FileVersion, Repository, synthetic_sha, utc


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


def _codes():
    return [record["code"] for record in get_recorder().warnings]


class TestDdlTieBreak:
    def _repo_with_touches(self, *paths):
        repo = Repository(name="demo/tied")
        for i, path in enumerate(paths):
            repo.add_commit(
                Commit(
                    synthetic_sha(i), "D", "d@x", utc(2020, 1 + i),
                    "c", [FileChange("A", path)],
                )
            )
        return repo

    def test_tie_emits_one_warning_with_context(self):
        repo = self._repo_with_touches("a.sql", "b.sql")
        assert find_ddl_path(repo) == "b.sql"
        records = get_recorder().warnings
        assert _codes() == ["ddl-tie-break"]
        assert records[0]["context"]["picked"] == "b.sql"
        assert records[0]["context"]["tied"] == 2
        assert get_metrics().counter("warnings.ddl-tie-break") == 1

    def test_unique_winner_stays_silent(self):
        repo = self._repo_with_touches("a.sql", "b.sql", "b.sql")
        assert find_ddl_path(repo) == "b.sql"
        assert _codes() == []


class TestCacheDirDegraded:
    def test_unusable_dir_warns_and_runs_memory_only(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the cache dir should go")
        cache = ParseCache(cache_dir=blocker)
        assert cache.cache_dir is None
        assert _codes() == ["cache-dir-degraded"]
        assert get_recorder().warnings[0]["context"]["cache_dir"] == (
            str(blocker)
        )
        # degraded but functional: parsing memoises in memory
        cache.parse("CREATE TABLE t (id INT);")
        cache.parse("CREATE TABLE t (id INT);")
        assert cache.stats.hits == 1

    def test_usable_dir_stays_silent(self, tmp_path):
        cache = ParseCache(cache_dir=tmp_path / "cache")
        assert cache.cache_dir is not None
        assert _codes() == []


class TestDdlUnparseable:
    def test_empty_parse_of_nonempty_content_warns(self):
        versions = [
            FileVersion(synthetic_sha(1), utc(2020, 1),
                        "CREATE TABLE t (id INT);"),
            FileVersion(synthetic_sha(2), utc(2020, 2),
                        "CREATE TABLE broken ("),
        ]
        SchemaHistory.from_file_versions(versions)
        assert _codes() == ["ddl-unparseable"]
        record = get_recorder().warnings[0]
        assert record["context"]["sha"] == synthetic_sha(2)
        assert get_metrics().counter("versions.parsed") == 2

    def test_clean_history_stays_silent(self):
        versions = [
            FileVersion(synthetic_sha(1), utc(2020, 1),
                        "CREATE TABLE t (id INT);"),
        ]
        SchemaHistory.from_file_versions(versions)
        assert _codes() == []


class TestEmptyHistorySkip:
    def _zero_schema_project(self):
        repo = Repository(name="demo/hollow")
        for i in range(3):
            repo.add_commit(
                Commit(
                    synthetic_sha(i), "D", "d@x", utc(2020, 1 + i),
                    "c", [FileChange("M" if i else "A", "schema.sql"),
                          FileChange("M", "src/app.py")],
                )
            )
        # the recorded DDL never defines a table: zero schema activity
        repo.record_version(
            "schema.sql", FileVersion(synthetic_sha(0), utc(2020, 1), "")
        )

        class _Project:
            name = repo.name
            repository = repo
            true_taxon = None

        return _Project()

    def test_skip_is_carried_with_a_warning(self):
        result = mine_and_analyze(self._zero_schema_project())
        assert result.skipped
        assert [r["code"] for r in result.warnings] == ["empty-history"]
        assert result.warnings[0]["context"]["project"] == "demo/hollow"
        assert result.metrics.counters["projects.skipped"] == 1
