"""Unit tests for the run manifest document."""

import json

import pytest

from repro import __version__
from repro.analysis import run_study
from repro.obs.events import reset_recorder, warn
from repro.obs.manifest import MANIFEST_FORMAT, build_manifest, write_manifest
from repro.obs.metrics import reset_metrics


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


class TestBuildManifest:
    def test_core_fields(self):
        manifest = build_manifest(command="study", seed=42, jobs=4)
        assert manifest["format"] == MANIFEST_FORMAT
        assert manifest["command"] == "study"
        assert manifest["status"] == "ok"
        assert manifest["seed"] == 42
        assert manifest["jobs"] == 4
        assert manifest["versions"]["repro"] == __version__
        assert "python" in manifest["versions"]
        assert set(manifest["cache"]) == {"dir", "env", "stats"}

    def test_study_contributes_counts_timings_and_metrics(self):
        study = run_study([])
        manifest = build_manifest(command="study", study=study)
        assert manifest["projects"] == 0
        assert manifest["skipped"] == []
        assert "total" in manifest["timings"]["stages"]
        assert "counters" in manifest["metrics"]

    def test_corpus_only_runs_use_the_global_registry(self):
        from repro.obs.metrics import get_metrics

        get_metrics().inc("projects.generated", 12)
        manifest = build_manifest(command="generate", corpus_size=12)
        assert manifest["projects"] == 12
        assert manifest["metrics"]["counters"]["projects.generated"] == 12
        assert "timings" not in manifest

    def test_store_block_records_the_active_artifact_store(self, tmp_path):
        from repro.pipeline.store import configure_store

        try:
            configure_store(tmp_path / "artifacts")
            manifest = build_manifest(command="study", seed=42)
            assert manifest["store"]["kind"] == "dir"
            assert manifest["store"]["dir"] == str(tmp_path / "artifacts")
            assert manifest["store"]["env"] == str(tmp_path / "artifacts")
            assert set(manifest["store"]["stats"]) == {
                "hits", "misses", "writes", "corrupt", "hit_rate",
            }
        finally:
            configure_store(None)

    def test_default_store_block_is_memory(self):
        from repro.pipeline.store import configure_store

        configure_store(None)
        manifest = build_manifest(command="study")
        assert manifest["store"]["kind"] == "memory"
        assert manifest["store"]["dir"] is None

    def test_warnings_are_aggregated_with_a_total_count(self):
        warnings = [
            warn("empty-history", "p: skipped", project="p"),
            warn("empty-history", "q: skipped", project="q"),
            warn("ddl-tie-break", "r: 2 paths tied", project="r"),
        ]
        manifest = build_manifest(command="study", warnings=warnings)
        assert manifest["warning_count"] == 3
        assert manifest["warnings"] == [
            {"code": "empty-history", "count": 2,
             "first_message": "p: skipped"},
            {"code": "ddl-tie-break", "count": 1,
             "first_message": "r: 2 paths tied"},
        ]

    def test_outputs_keep_only_set_paths(self, tmp_path):
        manifest = build_manifest(
            command="study",
            outputs={"trace": tmp_path / "t.json", "events": None},
        )
        assert manifest["outputs"] == {"trace": str(tmp_path / "t.json")}

    def test_error_status_is_recorded(self):
        assert build_manifest(command="study", status="error")["status"] == (
            "error"
        )


class TestWriteManifest:
    def test_round_trips_through_json_loads(self, tmp_path):
        study = run_study([])
        manifest = build_manifest(
            command="study", seed=7, jobs=2, study=study,
            warnings=[warn("empty-history", "p", project="p")],
        )
        path = write_manifest(manifest, tmp_path / "sub" / "manifest.json")
        loaded = json.loads(path.read_text())
        assert loaded["seed"] == 7
        assert loaded["warning_count"] == 1
        # and the loaded document is pure JSON data
        assert json.loads(json.dumps(loaded)) == loaded
