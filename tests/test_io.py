"""Unit tests for corpus save/load and CSV export."""

import json

import pytest

from repro.analysis import run_study
from repro.corpus import generate_corpus, profile_for, generate_project, ProjectSpec
from repro.heartbeat import Month
from repro.io import (
    MANIFEST_NAME,
    export_measures_csv,
    load_corpus,
    read_measures_csv,
    save_corpus,
)
from repro.mining import mine_project
from repro.taxa import Taxon


@pytest.fixture(scope="module")
def small_corpus():
    projects = []
    for i, taxon in enumerate(
        [Taxon.FROZEN, Taxon.MODERATE, Taxon.ACTIVE]
    ):
        spec = ProjectSpec(
            name=f"org/proj-{i}",
            taxon=taxon,
            seed=1000 + i,
            vendor="mysql" if i % 2 else "postgres",
            duration_months=18,
            start=Month(2015, 4),
        )
        projects.append(generate_project(spec, profile_for(taxon)))
    return projects


class TestCorpusRoundTrip:
    def test_save_creates_layout(self, small_corpus, tmp_path):
        root = save_corpus(small_corpus, tmp_path / "corpus")
        assert (root / MANIFEST_NAME).exists()
        assert (root / "org__proj-0" / "gitlog.txt").exists()
        assert (root / "org__proj-0" / "versions" / "0000.sql").exists()

    def test_load_restores_projects(self, small_corpus, tmp_path):
        root = save_corpus(small_corpus, tmp_path / "corpus")
        loaded = load_corpus(root)
        assert [p.name for p in loaded] == [p.name for p in small_corpus]
        assert [p.true_taxon for p in loaded] == [
            p.true_taxon for p in small_corpus
        ]

    def test_roundtrip_preserves_mining_results(
        self, small_corpus, tmp_path
    ):
        root = save_corpus(small_corpus, tmp_path / "corpus")
        for original, loaded in zip(small_corpus, load_corpus(root)):
            a = mine_project(original.repository)
            b = mine_project(loaded.repository)
            assert a.schema_heartbeat.values == b.schema_heartbeat.values
            assert a.project_heartbeat.values == b.project_heartbeat.values

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path)

    def test_unknown_format_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": "other", "projects": []})
        )
        with pytest.raises(ValueError):
            load_corpus(tmp_path)

    def test_version_count_mismatch_raises(self, small_corpus, tmp_path):
        root = save_corpus(small_corpus, tmp_path / "corpus")
        extra = root / "org__proj-0" / "versions" / "9999.sql"
        extra.write_text("CREATE TABLE ghost (a INT);")
        with pytest.raises(ValueError):
            load_corpus(root)


class TestMeasuresCsv:
    def test_export_and_read_back(self, small_corpus, tmp_path):
        study = run_study(small_corpus)
        path = export_measures_csv(study, tmp_path / "measures.csv")
        rows = read_measures_csv(path)
        assert len(rows) == 3
        assert rows[0]["name"] == "org/proj-0"
        assert rows[0]["true_taxon"] == "frozen"

    def test_blank_advance_is_empty_cell(self, tmp_path):
        spec = ProjectSpec(
            name="org/blank",
            taxon=Taxon.FROZEN,
            seed=5,
            vendor="mysql",
            duration_months=1,
            start=Month(2016, 1),
        )
        project = generate_project(spec, profile_for(Taxon.FROZEN))
        study = run_study([project])
        path = export_measures_csv(study, tmp_path / "m.csv")
        row = read_measures_csv(path)[0]
        assert row["advance_over_source"] == ""

    def test_numeric_fields_parse(self, small_corpus, tmp_path):
        study = run_study(small_corpus)
        path = export_measures_csv(study, tmp_path / "m.csv")
        for row in read_measures_csv(path):
            assert 0 <= float(row["sync_10"]) <= 1
            assert 0 < float(row["attainment_100"]) <= 1
            assert int(row["duration_months"]) == 18
