"""Unit tests for the figure computations and the study driver."""

import pytest

from repro.analysis import (
    ProjectMeasures,
    analyze_project,
    canonical_study,
    fig4_sync_histogram,
    fig6_advance_table,
    fig7_always_advance,
    fig8_attainment,
    long_life_sync_band,
    sec7_statistics,
)
from repro.coevolution import CoevolutionMeasures, JointProgress
from repro.heartbeat import Month
from repro.taxa import TAXA_ORDER, Taxon


def fake_project(
    name="p",
    *,
    taxon=Taxon.MODERATE,
    project=(0.25, 0.5, 0.75, 1.0),
    schema=(0.8, 0.9, 1.0, 1.0),
):
    joint = JointProgress.from_series(list(project), list(schema))
    return ProjectMeasures(
        name=name,
        taxon=taxon,
        duration_months=joint.n_points,
        schema_total_activity=10,
        project_total_updates=100,
        schema_commits=3,
        active_schema_commits=2,
        coevolution=CoevolutionMeasures.of(joint),
        joint=joint,
    )


class TestFig4:
    def test_counts_sum_to_total(self):
        projects = [fake_project(str(i)) for i in range(7)]
        hist = fig4_sync_histogram(projects)
        assert sum(hist.counts) == 7

    def test_identical_progress_lands_in_top_bucket(self):
        p = fake_project(project=(0.5, 1.0), schema=(0.5, 1.0))
        hist = fig4_sync_histogram([p])
        assert hist.counts[-1] == 1
        assert hist.hand_in_hand_count == 1

    def test_out_of_sync_lands_low(self):
        p = fake_project(
            project=(0.1, 0.2, 0.3, 1.0), schema=(1.0, 1.0, 1.0, 1.0)
        )
        hist = fig4_sync_histogram([p])
        assert hist.counts[0] + hist.counts[1] == 1


class TestFig6:
    def test_rows_ordered_high_to_low(self):
        table = fig6_advance_table([fake_project()])
        assert table.rows[0].label == "0.9-1"
        assert table.rows[-1].label == "0-0.1"

    def test_blank_counting(self):
        blank = fake_project(project=(1.0,), schema=(1.0,))
        table = fig6_advance_table([blank, fake_project()])
        assert table.blank_source == 1
        assert table.blank_time == 1

    def test_cumulative_reaches_everything_but_blanks(self):
        projects = [fake_project(str(i)) for i in range(5)]
        table = fig6_advance_table(projects)
        assert table.rows[-1].source_cum_pct == pytest.approx(1.0)

    def test_row_lookup(self):
        table = fig6_advance_table([fake_project()])
        assert table.row("0.9-1").source_count == 1
        with pytest.raises(KeyError):
            table.row("nope")


class TestFig7:
    def test_per_taxon_rows(self):
        projects = [
            fake_project("a", taxon=Taxon.FROZEN),
            fake_project("b", taxon=Taxon.FROZEN),
            fake_project("c", taxon=Taxon.ACTIVE),
        ]
        always = fig7_always_advance(projects)
        assert always.row(Taxon.FROZEN).total == 2
        assert always.row(Taxon.ACTIVE).total == 1
        assert always.total == 3

    def test_totals_are_sums(self):
        projects = [fake_project(str(i)) for i in range(4)]
        always = fig7_always_advance(projects)
        assert always.total_over_both <= always.total_over_source
        assert always.total_over_both <= always.total_over_time

    def test_all_taxa_present(self):
        always = fig7_always_advance([])
        assert [r.taxon for r in always.rows] == list(TAXA_ORDER)


class TestFig8:
    def test_counts_per_alpha_sum_to_total(self):
        projects = [fake_project(str(i)) for i in range(9)]
        breakdown = fig8_attainment(projects)
        for alpha in breakdown.alphas:
            assert sum(breakdown.counts[alpha]) == 9

    def test_early_attainer(self):
        # schema complete at month 0 of 10
        p = fake_project(
            project=tuple((i + 1) / 10 for i in range(10)),
            schema=(1.0,) * 10,
        )
        breakdown = fig8_attainment([p])
        assert breakdown.early_count(1.0) == 1

    def test_late_attainer(self):
        schema = (0.1,) * 9 + (1.0,)
        p = fake_project(
            project=tuple((i + 1) / 10 for i in range(10)), schema=schema
        )
        breakdown = fig8_attainment([p])
        assert breakdown.late_count(1.0) == 1
        assert breakdown.early_count(0.5) == 0

    def test_boundary_value_belongs_to_early_range(self):
        # attainment exactly at 20% of life (month 0 of a 5-month life,
        # fraction 1/5 = 0.2) counts as "within the first 20%"
        schema = (1.0, 1.0, 1.0, 1.0, 1.0)
        p = fake_project(
            project=tuple((i + 1) / 5 for i in range(5)), schema=schema
        )
        breakdown = fig8_attainment([p])
        assert breakdown.count(1.0, 0) == 1


class TestStatisticsReport:
    @pytest.fixture(scope="class")
    def study(self):
        return canonical_study()

    def test_all_attributes_non_normal(self, study):
        # the paper reports p < 0.007 throughout on its real corpus; on
        # the synthetic corpus all attributes reject normality at 0.05
        # and all but (at most) one do so below the paper's 0.007
        report = study.statistics()
        for name, result in report.normality.items():
            assert result.p_value < 0.05, name
        strict = sum(
            1 for r in report.normality.values() if r.p_value < 0.007
        )
        assert strict >= len(report.normality) - 1

    def test_taxon_affects_synchronicity(self, study):
        report = study.statistics()
        assert report.sync_effect.test.p_value < 0.05

    def test_taxon_affects_attainment(self, study):
        report = study.statistics()
        assert report.attainment_effect.test.p_value < 0.05

    def test_frozen_taxa_attain_early(self, study):
        report = study.statistics()
        medians = report.attainment_effect.medians
        for taxon in (Taxon.FROZEN, Taxon.ALMOST_FROZEN):
            assert medians[taxon] <= 0.35
        assert medians[Taxon.ACTIVE] > medians[Taxon.FROZEN]

    def test_kendall_correlations_strong(self, study):
        report = study.statistics()
        assert report.tau_sync.statistic > 0.5
        assert report.tau_advance.statistic > 0.5

    def test_lag_tables_have_six_rows(self, study):
        report = study.statistics()
        for lag in report.lag_tests.values():
            assert len(lag.table) == 6


class TestStudyResult:
    @pytest.fixture(scope="class")
    def study(self):
        return canonical_study()

    def test_project_count(self, study):
        assert len(study) == 195
        assert not study.skipped

    def test_headline_keys(self, study):
        headline = study.headline()
        assert headline["projects"] == 195
        assert headline["blanks"] == 2
        assert headline["always_over_both"] <= headline["always_over_source"]
        assert headline["always_over_both"] <= headline["always_over_time"]

    def test_by_taxon_partition(self, study):
        total = sum(len(study.by_taxon(t)) for t in TAXA_ORDER)
        assert total == len(study)

    def test_long_life_band_is_populated(self, study):
        lo, hi = long_life_sync_band(study.fig5())
        assert 0 <= lo <= hi <= 1

    def test_analyze_project_zero_activity_raises(self):
        from repro.heartbeat import Heartbeat, ZeroTotalError
        from repro.mining import ProjectHistory, SchemaHistory
        from repro.vcs import FileVersion, utc

        history = ProjectHistory(
            name="x",
            ddl_path="schema.sql",
            project_heartbeat=Heartbeat(Month(2020, 1), [1.0]),
            schema_heartbeat=Heartbeat(Month(2020, 1), [0.0]),
            schema_history=SchemaHistory.from_file_versions(
                [FileVersion("a", utc(2020, 1), "-- empty")]
            ),
        )
        with pytest.raises(ZeroTotalError):
            analyze_project(history)
