"""Unit tests for the Kaplan–Meier estimator and schema survival."""

import pytest

from repro.stats import Observation, kaplan_meier


class TestKaplanMeier:
    def test_no_censoring_matches_empirical(self):
        # events at 1, 2, 3, 4 with no censoring: S is the empirical
        # survivor function
        curve = kaplan_meier(
            [Observation(t, True) for t in (1, 2, 3, 4)]
        )
        assert curve.survival_at(0.5) == 1.0
        assert curve.survival_at(1) == pytest.approx(0.75)
        assert curve.survival_at(2.5) == pytest.approx(0.50)
        assert curve.survival_at(4) == pytest.approx(0.0)

    def test_tied_events(self):
        curve = kaplan_meier(
            [Observation(1, True), Observation(1, True),
             Observation(2, True), Observation(2, False)]
        )
        assert curve.survival_at(1) == pytest.approx(0.5)
        # at t=2: 2 at risk, 1 event -> S *= 1/2
        assert curve.survival_at(2) == pytest.approx(0.25)

    def test_censoring_keeps_survival_higher(self):
        pure = kaplan_meier(
            [Observation(t, True) for t in (1, 2, 3, 4)]
        )
        censored = kaplan_meier(
            [Observation(1, True), Observation(2, True),
             Observation(3, False), Observation(4, False)]
        )
        assert censored.survival_at(4) > pure.survival_at(4)

    def test_textbook_example(self):
        # classic: events 6,6,6 censored 6, events 7, 10, censored 9,10...
        # simplified: verify the product-limit arithmetic on paper
        observations = [
            Observation(6, True),
            Observation(6, True),
            Observation(6, False),
            Observation(7, True),
            Observation(9, False),
            Observation(10, True),
        ]
        curve = kaplan_meier(observations)
        # t=6: 6 at risk, 2 events -> 4/6
        assert curve.survival_at(6) == pytest.approx(4 / 6)
        # t=7: 3 at risk, 1 event -> 4/6 * 2/3 = 4/9
        assert curve.survival_at(7) == pytest.approx(4 / 9)
        # t=10: 1 at risk, 1 event -> 0
        assert curve.survival_at(10) == pytest.approx(0.0)

    def test_median_time(self):
        curve = kaplan_meier(
            [Observation(t, True) for t in (1, 2, 3, 4)]
        )
        assert curve.median_time() == 2

    def test_median_never_reached(self):
        curve = kaplan_meier(
            [Observation(1, True)] + [Observation(9, False)] * 9
        )
        assert curve.median_time() is None

    def test_counts(self):
        curve = kaplan_meier(
            [Observation(1, True), Observation(2, False)]
        )
        assert curve.n_subjects == 2
        assert curve.n_events == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Observation(-1, True)


class TestSchemaSurvival:
    @pytest.fixture(scope="class")
    def survival(self):
        from repro.analysis import canonical_study, schema_survival

        return schema_survival(canonical_study().projects)

    def test_partitions_make_sense(self, survival):
        assert survival.never_evolved > 0
        assert survival.censored > 0
        assert (
            survival.curve.n_subjects + survival.never_evolved <= 195
        )

    def test_quiet_share_is_monotone(self, survival):
        shares = [
            survival.share_quiet_by(t) for t in (0.2, 0.4, 0.6, 0.8)
        ]
        assert shares == sorted(shares)

    def test_gravitation_to_rigidity(self, survival):
        """By half the project life, a large share of schemata have
        stopped evolving — the survival restatement of §6."""
        assert survival.share_quiet_by(0.5) >= 0.35
        # but a resistant population survives past 80% of life
        assert survival.curve.survival_at(0.8) >= 0.15
