"""Unit and property tests for SMO inference (diff -> operators)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import random_schema, sample_change_smos
from repro.diff import diff_schemas
from repro.schema import normalize_type
from repro.smo import (
    AddAttribute,
    ChangeType,
    CreateTable,
    DropAttribute,
    DropTable,
    SetPrimaryKey,
    apply_all,
    infer_from_ddl,
    infer_smos,
)
from repro.sqlparser import parse_schema


def schema_of(ddl):
    return parse_schema(ddl).schema


BASE = """
CREATE TABLE users (id INT, name VARCHAR(40), PRIMARY KEY (id));
CREATE TABLE posts (pid INT, body TEXT);
"""


class TestInference:
    def test_identity_infers_nothing(self):
        schema = schema_of(BASE)
        assert infer_smos(schema, schema) == []

    def test_table_birth(self):
        new = schema_of(BASE + "CREATE TABLE tags (tid INT);")
        smos = infer_smos(schema_of(BASE), new)
        assert len(smos) == 1
        assert isinstance(smos[0], CreateTable)
        assert smos[0].table.name == "tags"

    def test_table_death(self):
        new = schema_of("CREATE TABLE users (id INT, name VARCHAR(40));")
        smos = infer_smos(schema_of(BASE), new)
        assert any(
            isinstance(s, DropTable) and s.name == "posts" for s in smos
        )

    def test_attribute_changes(self):
        new = schema_of(
            "CREATE TABLE users (id BIGINT, email TEXT, PRIMARY KEY (id));"
            "CREATE TABLE posts (pid INT, body TEXT);"
        )
        smos = infer_smos(schema_of(BASE), new)
        kinds = {type(s).__name__ for s in smos}
        assert kinds == {"AddAttribute", "DropAttribute", "ChangeType"}

    def test_pk_change(self):
        new = schema_of(
            "CREATE TABLE users (id INT, name VARCHAR(40), "
            "PRIMARY KEY (name));"
            "CREATE TABLE posts (pid INT, body TEXT);"
        )
        smos = infer_smos(schema_of(BASE), new)
        assert [s for s in smos if isinstance(s, SetPrimaryKey)]

    def test_full_table_replacement_applies(self):
        """Adds must precede drops so the table never empties."""
        old = schema_of("CREATE TABLE t (a INT);")
        new = schema_of("CREATE TABLE t (b TEXT);")
        smos = infer_smos(old, new)
        result = apply_all(old, smos)
        assert diff_schemas(new, result).is_identical

    def test_infer_from_ddl(self):
        smos = infer_from_ddl(
            "CREATE TABLE t (a INT);",
            "CREATE TABLE t (a INT, b TEXT);",
        )
        assert len(smos) == 1
        assert isinstance(smos[0], AddAttribute)

    def test_inferred_sequence_is_applicable_and_correct(self):
        old = schema_of(BASE)
        new = schema_of(
            "CREATE TABLE users (id BIGINT, name VARCHAR(80), age INT, "
            "PRIMARY KEY (name));"
            "CREATE TABLE tags (tid INT);"
        )
        result = apply_all(old, infer_smos(old, new))
        assert diff_schemas(new, result).is_identical
        assert result.table("users").primary_key == ("name",)


class TestInferenceProperty:
    seeds = st.integers(min_value=0, max_value=2**32 - 1)

    @settings(max_examples=40, deadline=None)
    @given(seeds, st.integers(min_value=1, max_value=25))
    def test_apply_infer_roundtrip(self, seed, magnitude):
        """apply(infer(a, b), a) is diff-identical to b."""
        schema = random_schema(random.Random(seed))
        rng = random.Random(seed ^ 0xBEEF)
        smos = sample_change_smos(schema, magnitude, rng, table_ops=True)
        target = apply_all(schema, smos)
        inferred = infer_smos(schema, target)
        rebuilt = apply_all(schema, inferred)
        assert diff_schemas(target, rebuilt).is_identical
        for table in target:
            assert rebuilt.table(table.name).pk_keys() == table.pk_keys()

    @settings(max_examples=40, deadline=None)
    @given(seeds)
    def test_infer_identity_is_empty(self, seed):
        schema = random_schema(random.Random(seed))
        assert infer_smos(schema, schema) == []

    @settings(max_examples=30, deadline=None)
    @given(seeds, st.integers(min_value=1, max_value=20))
    def test_inferred_activity_matches_diff(self, seed, magnitude):
        """The inferred operators' DDL re-parses to the same target."""
        schema = random_schema(random.Random(seed))
        rng = random.Random(seed ^ 0xF00D)
        smos = sample_change_smos(schema, magnitude, rng, table_ops=False)
        target = apply_all(schema, smos)
        script = schema.render_sql() + "\n" + "\n".join(
            smo.render_sql() for smo in infer_smos(schema, target)
        )
        reparsed = parse_schema(script).schema
        assert diff_schemas(target, reparsed).is_identical
