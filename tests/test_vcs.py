"""Unit tests for the VCS substrate and git-log text I/O."""

import pytest

from repro.vcs import (
    Commit,
    FileChange,
    FileVersion,
    GitLogError,
    Repository,
    format_git_log,
    parse_date,
    parse_git_log,
    parse_repository,
    synthetic_sha,
    utc,
)

SAMPLE_LOG = """commit 3f786850e387550fdab836ed7e6dc881de23001b
Author: Alice <alice@example.org>
Date:   2016-02-10 09:30:00 +0000

    schema: add comments table

M\tschema.sql
A\tsrc/comments.js
M\tsrc/app.js

commit 89e6c98d92887913cadf06b2adb97f26cde4849b
Author: Bob <bob@example.org>
Date:   2015-12-01 17:05:44 +0200

    initial import

A\tschema.sql
A\tsrc/app.js
A\tREADME.md
"""


class TestParseGitLog:
    def test_commit_count_and_order(self):
        commits = parse_git_log(SAMPLE_LOG)
        assert len(commits) == 2
        assert commits[0].sha.startswith("3f78")  # newest first, as printed

    def test_author_and_email(self):
        commits = parse_git_log(SAMPLE_LOG)
        assert commits[0].author == "Alice"
        assert commits[1].email == "bob@example.org"

    def test_dates_with_offsets(self):
        commits = parse_git_log(SAMPLE_LOG)
        assert commits[1].date.utcoffset().total_seconds() == 7200

    def test_messages(self):
        commits = parse_git_log(SAMPLE_LOG)
        assert commits[0].message == "schema: add comments table"

    def test_file_changes(self):
        commits = parse_git_log(SAMPLE_LOG)
        assert commits[0].files_updated == 3
        statuses = [c.status for c in commits[0].changes]
        assert statuses == ["M", "A", "M"]

    def test_rename_entries(self):
        log = SAMPLE_LOG + (
            "\ncommit aaaa567890123456789012345678901234567890\n"
            "Author: C <c@x>\n"
            "Date:   2016-03-01 10:00:00 +0000\n\n"
            "    move\n\n"
            "R100\told/path.js\tnew/path.js\n"
        )
        commits = parse_git_log(log)
        rename = commits[-1].changes[0]
        assert rename.kind == "R"
        assert rename.path == "new/path.js"
        assert rename.old_path == "old/path.js"

    def test_missing_date_raises(self):
        bad = "commit 3f786850e387\nAuthor: A <a@x>\n\n    msg\n"
        with pytest.raises(GitLogError):
            parse_git_log(bad)

    def test_garbage_before_first_commit_raises(self):
        with pytest.raises(GitLogError):
            parse_git_log("not a log\n" + SAMPLE_LOG)

    def test_empty_log(self):
        assert parse_git_log("") == []

    def test_decorated_commit_line(self):
        log = SAMPLE_LOG.replace(
            "commit 3f786850e387550fdab836ed7e6dc881de23001b",
            "commit 3f786850e387550fdab836ed7e6dc881de23001b (HEAD -> main)",
        )
        assert len(parse_git_log(log)) == 2


class TestRoundTrip:
    def test_format_then_parse(self):
        commits = parse_git_log(SAMPLE_LOG)
        text = format_git_log(commits[::-1], newest_first=True)
        reparsed = parse_git_log(text)
        assert [c.sha for c in reparsed] == [c.sha for c in commits]
        assert [c.files_updated for c in reparsed] == [3, 3]
        assert [c.date for c in reparsed] == [c.date for c in commits]

    def test_format_empty(self):
        assert format_git_log([]) == ""

    def test_multiline_message_roundtrip(self):
        commit = Commit(
            sha=synthetic_sha("x"),
            author="A",
            email="a@x",
            date=utc(2020, 1),
            message="line one\nline two",
            changes=[FileChange("A", "f.txt")],
        )
        reparsed = parse_git_log(format_git_log([commit]))
        assert reparsed[0].message == "line one\nline two"


class TestParseDate:
    def test_iso_with_offset(self):
        moment = parse_date("2015-12-01 17:05:44 +0200")
        assert moment.year == 2015

    def test_iso_t_form(self):
        assert parse_date("2015-12-01T17:05:44+0200").month == 12

    def test_naive_fallback(self):
        assert parse_date("2015-12-01 17:05:44").day == 1

    def test_garbage_raises(self):
        with pytest.raises(GitLogError):
            parse_date("yesterday-ish")


class TestRepository:
    def test_parse_repository_sorts_chronologically(self):
        repo = parse_repository("demo", SAMPLE_LOG)
        assert repo.commits[0].sha.startswith("89e6")
        assert repo.start_date < repo.end_date

    def test_add_commit_rejects_time_travel(self):
        repo = parse_repository("demo", SAMPLE_LOG)
        stale = Commit(
            sha=synthetic_sha("old"),
            author="X",
            email="x@x",
            date=utc(2010, 1),
            message="too old",
        )
        with pytest.raises(ValueError):
            repo.add_commit(stale)

    def test_commits_touching(self):
        repo = parse_repository("demo", SAMPLE_LOG)
        touching = repo.commits_touching("schema.sql")
        assert len(touching) == 2

    def test_paths(self):
        repo = parse_repository("demo", SAMPLE_LOG)
        assert "README.md" in repo.paths()

    def test_file_versions(self):
        repo = Repository(name="x")
        repo.record_version(
            "schema.sql",
            FileVersion(synthetic_sha(1), utc(2020, 1), "CREATE TABLE t();"),
        )
        assert len(repo.versions_of("schema.sql")) == 1
        assert repo.versions_of("missing.sql") == []

    def test_empty_repo_dates_raise(self):
        with pytest.raises(ValueError):
            Repository(name="x").start_date

    def test_synthetic_sha_deterministic(self):
        assert synthetic_sha("a", 1) == synthetic_sha("a", 1)
        assert synthetic_sha("a", 1) != synthetic_sha("a", 2)
        assert len(synthetic_sha("q")) == 40


class TestFileChange:
    def test_kind_strips_score(self):
        assert FileChange("R086", "b", "a").kind == "R"

    def test_empty_status_rejected(self):
        with pytest.raises(ValueError):
            FileChange("", "p")
