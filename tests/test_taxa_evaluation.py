"""Unit tests for classifier evaluation."""

import pytest

from repro.taxa import ClassifierEvaluation, Taxon

F = Taxon.FROZEN
A = Taxon.ACTIVE
M = Taxon.MODERATE


class TestClassifierEvaluation:
    def test_perfect_prediction(self):
        labels = [F, A, M, F]
        evaluation = ClassifierEvaluation.of(labels, list(labels))
        assert evaluation.accuracy == 1.0
        assert evaluation.macro_f1() == 1.0

    def test_accuracy(self):
        evaluation = ClassifierEvaluation.of([F, F, A, A], [F, A, A, A])
        assert evaluation.accuracy == pytest.approx(0.75)

    def test_confusion_counts(self):
        evaluation = ClassifierEvaluation.of([F, F, A], [F, A, A])
        assert evaluation.confusion[(F, F)] == 1
        assert evaluation.confusion[(F, A)] == 1
        assert evaluation.confusion[(A, A)] == 1

    def test_precision_recall(self):
        # truth:    F F A A A
        # predicted:F A A A F
        evaluation = ClassifierEvaluation.of(
            [F, F, A, A, A], [F, A, A, A, F]
        )
        frozen = evaluation.score(F)
        assert frozen.precision == pytest.approx(0.5)  # 1 of 2 F calls
        assert frozen.recall == pytest.approx(0.5)     # 1 of 2 true F
        active = evaluation.score(A)
        assert active.precision == pytest.approx(2 / 3)
        assert active.recall == pytest.approx(2 / 3)

    def test_f1_degenerate(self):
        evaluation = ClassifierEvaluation.of([F], [A])
        assert evaluation.score(M).f1 == 0.0

    def test_macro_f1_ignores_absent_taxa(self):
        evaluation = ClassifierEvaluation.of([F, F], [F, F])
        assert evaluation.macro_f1() == 1.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ClassifierEvaluation.of([F], [F, A])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClassifierEvaluation.of([], [])

    def test_render_contains_all_taxa(self):
        evaluation = ClassifierEvaluation.of([F, A], [F, A])
        text = evaluation.render()
        assert "confusion" in text.lower()
        assert "FROZEN" in text


class TestOnCanonicalCorpus:
    def test_canonical_classifier_quality(self):
        from repro.analysis import canonical_study

        study = canonical_study()
        labelled = [p for p in study.projects if p.true_taxon]
        evaluation = ClassifierEvaluation.of(
            [p.true_taxon for p in labelled],
            [p.taxon for p in labelled],
        )
        assert evaluation.accuracy >= 0.80
        assert evaluation.macro_f1() >= 0.60
        # FROZEN is unambiguous: zero post-initial activity
        assert evaluation.score(Taxon.FROZEN).recall == 1.0
