"""Unit tests for heartbeat shape analytics."""

import pytest

from repro.heartbeat import (
    Heartbeat,
    Month,
    ShapeSummary,
    burstiness,
    flat_lines,
    gini,
    longest_flat_line,
    top_share,
)


def hb(values):
    return Heartbeat(Month(2018, 1), [float(v) for v in values])


class TestFlatLines:
    def test_finds_interior_runs(self):
        runs = flat_lines(hb([5, 0, 0, 3, 0, 0, 0, 2]))
        assert [(r.start_index, r.length) for r in runs] == [(1, 2), (4, 3)]

    def test_trailing_run(self):
        runs = flat_lines(hb([5, 0, 0]))
        assert [(r.start_index, r.length) for r in runs] == [(1, 2)]
        assert runs[0].end_index == 2

    def test_min_length_filters(self):
        runs = flat_lines(hb([5, 0, 3, 0, 0, 3]), min_length=2)
        assert len(runs) == 1

    def test_no_zeros(self):
        assert flat_lines(hb([1, 2, 3])) == []

    def test_longest_flat_line(self):
        assert longest_flat_line(hb([1, 0, 0, 0, 2, 0])) == 3
        assert longest_flat_line(hb([1, 2])) == 0

    def test_case_study_shape(self):
        # §3.3: "two flat-line periods of no change connected by a
        # period of incremental change"
        values = [48, 0, 0, 0, 0, 5, 7, 6, 0, 0, 0, 34]
        assert len(flat_lines(hb(values), min_length=3)) == 2


class TestGini:
    def test_uniform_is_zero(self):
        assert gini(hb([4, 4, 4, 4])) == pytest.approx(0.0, abs=1e-9)

    def test_single_spike_is_near_one(self):
        assert gini(hb([0] * 19 + [100])) == pytest.approx(0.95, abs=0.01)

    def test_monotone_in_concentration(self):
        spread = gini(hb([3, 3, 3, 3]))
        skewed = gini(hb([9, 1, 1, 1]))
        spike = gini(hb([12, 0, 0, 0]))
        assert spread < skewed < spike

    def test_zero_heartbeat_undefined(self):
        with pytest.raises(ValueError):
            gini(hb([0, 0]))


class TestBurstiness:
    def test_constant_is_minus_one(self):
        assert burstiness(hb([5, 5, 5])) == pytest.approx(-1.0)

    def test_bursty_is_positive(self):
        assert burstiness(hb([0] * 30 + [100])) > 0.5

    def test_zero_heartbeat_undefined(self):
        with pytest.raises(ValueError):
            burstiness(hb([0]))


class TestTopShare:
    def test_all_in_one_month(self):
        assert top_share(hb([0, 0, 0, 0, 10])) == pytest.approx(1.0)

    def test_uniform(self):
        # 10 months, top 2 hold exactly 20%
        assert top_share(hb([1] * 10)) == pytest.approx(0.2)

    def test_pareto_like(self):
        values = [40, 40, 5, 5, 2, 2, 2, 2, 1, 1]
        assert top_share(hb(values)) == pytest.approx(0.8)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            top_share(hb([1]), fraction=0.0)

    def test_zero_heartbeat_undefined(self):
        with pytest.raises(ValueError):
            top_share(hb([0, 0]))


class TestShapeSummary:
    def test_collects_everything(self):
        summary = ShapeSummary.of(hb([10, 0, 0, 5, 0, 0, 0, 1]))
        assert summary.duration_months == 8
        assert summary.active_months == 3
        assert summary.longest_flat_line == 3
        assert summary.flat_line_count == 2
        assert 0 < summary.gini < 1
        assert summary.top20_share > 0.5

    def test_frozen_vs_active_shapes_differ(self):
        frozen = ShapeSummary.of(hb([40] + [0] * 23))
        active = ShapeSummary.of(hb([10] + [4, 5, 3, 6] * 6))
        assert frozen.gini > active.gini
        assert frozen.longest_flat_line > active.longest_flat_line
