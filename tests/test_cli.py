"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

OLD_DDL = """
CREATE TABLE users (id INT, name VARCHAR(40), email TEXT);
CREATE TABLE posts (pid INT, body TEXT);
"""
NEW_DDL = """
CREATE TABLE users (id BIGINT, name VARCHAR(40));
CREATE TABLE posts (pid INT, body TEXT);
CREATE TABLE tags (tid INT, label VARCHAR(20));
"""
APP_SOURCE = """
q1 = "SELECT email FROM users"
q2 = "SELECT body FROM posts"
q3 = "SELECT id FROM users"
"""


@pytest.fixture()
def ddl_files(tmp_path):
    old = tmp_path / "old.sql"
    new = tmp_path / "new.sql"
    old.write_text(OLD_DDL)
    new.write_text(NEW_DDL)
    return old, new


class TestDiffCommand:
    def test_diff_outputs_changes(self, ddl_files, capsys):
        old, new = ddl_files
        assert main(["diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "ejected: users.email" in out
        assert "type_changed: users.id" in out
        assert "total activity: 4" in out


class TestImpactCommand:
    def test_impact_lists_affected_queries(
        self, ddl_files, tmp_path, capsys
    ):
        old, new = ddl_files
        src = tmp_path / "app.py"
        src.write_text(APP_SOURCE)
        assert main(["impact", str(old), str(new), str(src)]) == 0
        out = capsys.readouterr().out
        assert "3 queries" in out
        assert "[breaks]" in out
        assert "users.email" in out


class TestStudyCommand:
    def test_headline_only(self, capsys):
        assert main(["study", "--figure", "headline"]) == 0
        out = capsys.readouterr().out
        assert "projects: 195" in out

    def test_figure_4(self, capsys):
        assert main(["study", "--figure", "4"]) == 0
        assert "Fig 4" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "measures.csv"
        assert main(
            ["study", "--figure", "headline", "--csv", str(csv_path)]
        ) == 0
        assert csv_path.exists()
        assert len(csv_path.read_text().splitlines()) == 196

    def test_scale_shrinks_the_corpus(self, capsys):
        # 195 projects / 32 -> one or two per taxon (7 total)
        assert main(
            ["study", "--scale", "32", "--figure", "headline",
             "--seed", "77"]
        ) == 0
        out = capsys.readouterr().out
        assert "projects: 7" in out


class TestCaseCommand:
    def test_case_renders_diagram(self, capsys):
        assert main(["case", "-"]) == 0  # every name contains '/' or '-'
        out = capsys.readouterr().out
        assert "S=schema" in out
        assert "synchronicity" in out

    def test_case_unknown_project(self, capsys):
        assert main(["case", "definitely-not-a-project-xyz"]) == 1


class TestObsExportCommand:
    TRACE = {
        "format": "repro-trace-v1",
        "spans": [{
            "name": "study", "start": 10.0, "seconds": 1.0,
            "status": "ok", "attributes": {},
            "children": [{
                "name": "project", "start": 10.1, "seconds": 0.4,
                "status": "ok", "attributes": {"worker": 42},
                "children": [],
            }],
        }],
    }
    SNAPSHOT = {"counters": {"projects.mined": 7}, "gauges": {},
                "histograms": {}}

    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(self.TRACE))
        return path

    def test_chrome_export_to_stdout(self, trace_file, capsys):
        assert main(["obs", "export", "chrome", str(trace_file)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["displayTimeUnit"] == "ms"
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == ["study", "project"]

    def test_flame_export_to_file(self, trace_file, tmp_path, capsys):
        out = tmp_path / "stacks.folded"
        assert main(
            ["obs", "export", "flame", str(trace_file),
             "--out", str(out)]
        ) == 0
        assert "written to" in capsys.readouterr().out
        assert "study 600000" in out.read_text()

    def test_prom_export_from_manifest_or_snapshot(self, tmp_path, capsys):
        # a manifest wraps the snapshot under "metrics"; a bare
        # snapshot works too
        for payload in ({"metrics": self.SNAPSHOT}, self.SNAPSHOT):
            path = tmp_path / "metrics.json"
            path.write_text(json.dumps(payload))
            assert main(["obs", "export", "prom", str(path)]) == 0
            out = capsys.readouterr().out
            assert "repro_projects_mined_total 7" in out

    def test_missing_file_exits_one(self, tmp_path, capsys):
        assert main(
            ["obs", "export", "chrome", str(tmp_path / "nope.json")]
        ) == 1
        assert "no such file" in capsys.readouterr().err

    def test_invalid_json_exits_one(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        assert main(["obs", "export", "flame", str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_foreign_trace_format_exits_one(self, tmp_path, capsys):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"format": "speedscope", "spans": []}))
        assert main(["obs", "export", "chrome", str(path)]) == 1
        assert "cannot export" in capsys.readouterr().err

    def test_unknown_kind_rejected_by_the_parser(self, trace_file):
        with pytest.raises(SystemExit):
            main(["obs", "export", "svg", str(trace_file)])


class TestGenerateCommand:
    def test_generate_scaled(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        assert main(
            ["generate", "--out", str(out_dir), "--seed", "77",
             "--scale", "32"]
        ) == 0
        assert "7 projects" in capsys.readouterr().out

    def test_generate_and_reload(self, tmp_path, capsys):
        # a tiny corpus via a non-default seed keeps the test quick:
        # reuse the canonical profiles but only verify the save path
        out_dir = tmp_path / "corpus"
        assert main(
            ["generate", "--out", str(out_dir), "--seed", "31"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "195 projects" in stdout
        assert (out_dir / "manifest.json").exists()

        assert main(
            [
                "study",
                "--corpus",
                str(out_dir),
                "--figure",
                "headline",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "projects: 195" in out


class TestValidateCommand:
    def test_clean_workload_exits_zero(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text("CREATE TABLE users (id INT, name TEXT);")
        src = tmp_path / "app.py"
        src.write_text('q = "SELECT id, name FROM users"\n')
        assert main(["validate", str(schema), str(src)]) == 0
        assert "validate cleanly" in capsys.readouterr().out

    def test_broken_workload_exits_nonzero(self, tmp_path, capsys):
        schema = tmp_path / "schema.sql"
        schema.write_text("CREATE TABLE users (id INT);")
        src = tmp_path / "app.py"
        src.write_text('q = "SELECT ghost FROM users"\n')
        assert main(["validate", str(schema), str(src)]) == 1
        assert "unknown_column" in capsys.readouterr().out


class TestReportCommand:
    def test_markdown_report(self, tmp_path):
        out = tmp_path / "r.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.read_text().startswith("#")

    def test_html_report(self, tmp_path):
        out = tmp_path / "r.html"
        assert main(
            ["report", "--out", str(out), "--format", "html"]
        ) == 0
        assert out.read_text().startswith("<!DOCTYPE html>")
