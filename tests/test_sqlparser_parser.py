"""Unit tests for the DDL parser."""

import pytest

from repro.schema import SchemaError
from repro.sqlparser import parse_schema, parse_table


class TestCreateTable:
    def test_minimal(self):
        table = parse_table("CREATE TABLE t (a INT);")
        assert table.name == "t"
        assert table.attribute_names == ["a"]

    def test_multiple_columns_and_types(self):
        table = parse_table(
            "CREATE TABLE t (a INT, b VARCHAR(10), c TEXT, d DECIMAL(8,2));"
        )
        assert [str(x.data_type) for x in table.attributes] == [
            "int", "varchar(10)", "text", "decimal(8, 2)",
        ]

    def test_backtick_identifiers(self):
        table = parse_table("CREATE TABLE `my table` (`a col` INT);")
        assert table.name == "my table"
        assert table.attribute_names == ["a col"]

    def test_if_not_exists(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); CREATE TABLE IF NOT EXISTS t (b INT);"
        )
        assert result.schema.table("t").attribute_names == ["a"]

    def test_redefinition_wins_without_guard(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); CREATE TABLE t (b INT);"
        )
        assert result.schema.table("t").attribute_names == ["b"]

    def test_schema_qualified_name(self):
        table = parse_table("CREATE TABLE public.users (id INT);")
        assert table.name == "users"

    def test_temporary_and_unlogged(self):
        assert parse_table("CREATE TEMPORARY TABLE t (a INT);").name == "t"
        assert parse_table("CREATE UNLOGGED TABLE t (a INT);").name == "t"


class TestColumnOptions:
    def test_not_null(self):
        table = parse_table("CREATE TABLE t (a INT NOT NULL, b INT);")
        assert not table.attribute("a").nullable
        assert table.attribute("b").nullable

    def test_default_literal(self):
        table = parse_table("CREATE TABLE t (a INT DEFAULT 5);")
        assert table.attribute("a").default == "5"

    def test_default_string(self):
        table = parse_table("CREATE TABLE t (a TEXT DEFAULT 'x');")
        assert table.attribute("a").default == "'x'"

    def test_default_function(self):
        table = parse_table(
            "CREATE TABLE t (a TIMESTAMP DEFAULT CURRENT_TIMESTAMP);"
        )
        assert table.attribute("a").default == "CURRENT_TIMESTAMP"

    def test_default_call(self):
        table = parse_table("CREATE TABLE t (a TIMESTAMP DEFAULT now());")
        assert table.attribute("a").default == "now()"

    def test_auto_increment(self):
        table = parse_table(
            "CREATE TABLE t (a INT AUTO_INCREMENT PRIMARY KEY);"
        )
        assert table.attribute("a").auto_increment
        assert table.primary_key == ("a",)

    def test_serial_implies_auto_increment(self):
        table = parse_table("CREATE TABLE t (id SERIAL);")
        assert table.attribute("id").auto_increment
        assert not table.attribute("id").nullable

    def test_inline_references(self):
        table = parse_table(
            "CREATE TABLE t (uid INT REFERENCES users(id));"
        )
        assert len(table.foreign_keys) == 1
        fk = table.foreign_keys[0]
        assert fk.ref_table == "users"
        assert fk.ref_columns == ("id",)

    def test_comment_and_collate_ignored(self):
        table = parse_table(
            "CREATE TABLE t (a VARCHAR(5) COLLATE utf8_bin "
            "COMMENT 'the a' NOT NULL);"
        )
        assert not table.attribute("a").nullable

    def test_generated_identity(self):
        table = parse_table(
            "CREATE TABLE t (id INT GENERATED ALWAYS AS IDENTITY);"
        )
        assert table.attribute("id").auto_increment

    def test_on_update_clause_ignored(self):
        table = parse_table(
            "CREATE TABLE t (ts TIMESTAMP NOT NULL "
            "DEFAULT CURRENT_TIMESTAMP ON UPDATE CURRENT_TIMESTAMP);"
        )
        assert not table.attribute("ts").nullable

    def test_check_constraint_on_column(self):
        table = parse_table("CREATE TABLE t (a INT CHECK (a > 0), b INT);")
        assert table.attribute_names == ["a", "b"]


class TestTableConstraints:
    def test_primary_key_clause(self):
        table = parse_table(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b));"
        )
        assert table.primary_key == ("a", "b")

    def test_named_constraint_pk(self):
        table = parse_table(
            "CREATE TABLE t (a INT, CONSTRAINT pk_t PRIMARY KEY (a));"
        )
        assert table.primary_key == ("a",)

    def test_foreign_key_clause(self):
        table = parse_table(
            "CREATE TABLE t (uid INT, "
            "FOREIGN KEY (uid) REFERENCES users (id));"
        )
        assert table.foreign_keys[0].columns == ("uid",)

    def test_named_foreign_key(self):
        table = parse_table(
            "CREATE TABLE t (uid INT, CONSTRAINT fk_u "
            "FOREIGN KEY (uid) REFERENCES users (id));"
        )
        assert table.foreign_keys[0].name == "fk_u"

    def test_keys_and_indexes_ignored(self):
        table = parse_table(
            "CREATE TABLE t (a INT, b INT, KEY idx_a (a), "
            "UNIQUE KEY uq_b (b), FULLTEXT KEY ft (b));"
        )
        assert table.attribute_names == ["a", "b"]

    def test_key_with_prefix_length(self):
        table = parse_table(
            "CREATE TABLE t (a VARCHAR(300), KEY idx_a (a(100)));"
        )
        assert table.attribute_names == ["a"]


class TestTableOptions:
    def test_engine_and_charset(self):
        table = parse_table(
            "CREATE TABLE t (a INT) ENGINE=InnoDB DEFAULT CHARSET=utf8;"
        )
        assert table.options["ENGINE"] == "InnoDB"
        assert table.options["CHARSET"] == "utf8"

    def test_auto_increment_start(self):
        table = parse_table("CREATE TABLE t (a INT) AUTO_INCREMENT=100;")
        assert table.options["AUTO_INCREMENT"] == "100"


class TestAlterTable:
    def test_add_column(self):
        result = parse_schema(
            "CREATE TABLE t (a INT);"
            "ALTER TABLE t ADD COLUMN b VARCHAR(5) NOT NULL;"
        )
        table = result.schema.table("t")
        assert table.attribute_names == ["a", "b"]
        assert not table.attribute("b").nullable

    def test_add_column_without_keyword(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD b INT;"
        )
        assert result.schema.table("t").attribute_names == ["a", "b"]

    def test_add_multiple_parenthesized(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD (b INT, c TEXT);"
        )
        assert result.schema.table("t").attribute_names == ["a", "b", "c"]

    def test_drop_column(self):
        result = parse_schema(
            "CREATE TABLE t (a INT, b INT); ALTER TABLE t DROP COLUMN b;"
        )
        assert result.schema.table("t").attribute_names == ["a"]

    def test_drop_unknown_column_is_issue(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t DROP COLUMN ghost;"
        )
        assert result.issues

    def test_modify_column_type(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t MODIFY COLUMN a BIGINT;"
        )
        attr = result.schema.table("t").attribute("a")
        assert attr.data_type.family == "bigint"

    def test_change_column_renames(self):
        result = parse_schema(
            "CREATE TABLE t (a INT, PRIMARY KEY (a));"
            "ALTER TABLE t CHANGE a aa BIGINT NOT NULL;"
        )
        table = result.schema.table("t")
        assert table.attribute_names == ["aa"]
        assert table.primary_key == ("aa",)
        assert table.attribute("aa").data_type.family == "bigint"

    def test_alter_column_type_postgres(self):
        result = parse_schema(
            "CREATE TABLE t (a VARCHAR(10));"
            "ALTER TABLE t ALTER COLUMN a TYPE VARCHAR(100);"
        )
        attr = result.schema.table("t").attribute("a")
        assert attr.data_type.params == (100,)

    def test_alter_column_set_not_null(self):
        result = parse_schema(
            "CREATE TABLE t (a INT);"
            "ALTER TABLE t ALTER COLUMN a SET NOT NULL;"
        )
        assert not result.schema.table("t").attribute("a").nullable

    def test_alter_column_set_default(self):
        result = parse_schema(
            "CREATE TABLE t (a INT);"
            "ALTER TABLE t ALTER COLUMN a SET DEFAULT 7;"
        )
        assert result.schema.table("t").attribute("a").default == "7"

    def test_alter_column_drop_default(self):
        result = parse_schema(
            "CREATE TABLE t (a INT DEFAULT 7);"
            "ALTER TABLE t ALTER COLUMN a DROP DEFAULT;"
        )
        assert result.schema.table("t").attribute("a").default is None

    def test_add_primary_key(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD PRIMARY KEY (a);"
        )
        assert result.schema.table("t").primary_key == ("a",)

    def test_drop_primary_key(self):
        result = parse_schema(
            "CREATE TABLE t (a INT, PRIMARY KEY (a));"
            "ALTER TABLE t DROP PRIMARY KEY;"
        )
        assert result.schema.table("t").primary_key == ()

    def test_add_foreign_key(self):
        result = parse_schema(
            "CREATE TABLE u (id INT); CREATE TABLE t (uid INT);"
            "ALTER TABLE t ADD CONSTRAINT fk FOREIGN KEY (uid) "
            "REFERENCES u (id);"
        )
        assert result.schema.table("t").foreign_keys[0].ref_table == "u"

    def test_rename_table_via_alter(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t RENAME TO t2;"
        )
        assert "t2" in result.schema
        assert "t" not in result.schema

    def test_rename_column(self):
        result = parse_schema(
            "CREATE TABLE t (a INT, PRIMARY KEY (a));"
            "ALTER TABLE t RENAME COLUMN a TO b;"
        )
        table = result.schema.table("t")
        assert table.attribute_names == ["b"]
        assert table.primary_key == ("b",)

    def test_alter_unknown_table_is_issue(self):
        result = parse_schema("ALTER TABLE ghost ADD COLUMN a INT;")
        assert result.issues

    def test_multi_clause_alter(self):
        result = parse_schema(
            "CREATE TABLE t (a INT);"
            "ALTER TABLE t ADD COLUMN b INT, DROP COLUMN a;"
        )
        assert result.schema.table("t").attribute_names == ["b"]


class TestDropAndRename:
    def test_drop_table(self):
        result = parse_schema("CREATE TABLE t (a INT); DROP TABLE t;")
        assert len(result.schema) == 0

    def test_drop_if_exists_missing_ok(self):
        result = parse_schema("DROP TABLE IF EXISTS ghost;")
        assert not result.issues

    def test_drop_missing_is_issue(self):
        result = parse_schema("DROP TABLE ghost;")
        assert result.issues

    def test_drop_multiple(self):
        result = parse_schema(
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT);"
            "DROP TABLE a, b;"
        )
        assert len(result.schema) == 0

    def test_rename_table_statement(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); RENAME TABLE t TO t2;"
        )
        assert "t2" in result.schema


class TestRobustness:
    def test_noise_statements_skipped(self):
        result = parse_schema(
            "SET NAMES utf8;\n"
            "USE mydb;\n"
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "CREATE INDEX idx ON t (a);\n"
            "COMMENT ON TABLE t IS 'hi';\n"
        )
        assert not result.issues
        assert len(result.schema) == 1
        # CREATE TABLE and CREATE INDEX both apply; the noise does not
        assert result.statements_applied == 2
        assert result.statements_total == 6
        assert result.schema.table("t").indexes[0].name == "idx"

    def test_mysqldump_header(self):
        text = (
            "/*!40101 SET @saved = @@character_set_client */;\n"
            "DROP TABLE IF EXISTS `t`;\n"
            "CREATE TABLE `t` (\n"
            "  `id` int(11) NOT NULL,\n"
            "  PRIMARY KEY (`id`)\n"
            ") ENGINE=MyISAM;\n"
        )
        result = parse_schema(text)
        assert result.schema.table("t").primary_key == ("id",)

    def test_postgres_dump_fragment(self):
        text = """
        SET statement_timeout = 0;
        CREATE TABLE notes (
            id integer NOT NULL,
            body character varying(1024) DEFAULT 'x'::character varying,
            created timestamp without time zone DEFAULT now()
        );
        ALTER TABLE ONLY notes ADD CONSTRAINT notes_pkey PRIMARY KEY (id);
        """
        result = parse_schema(text)
        table = result.schema.table("notes")
        assert table.primary_key == ("id",)
        assert table.attribute("body").data_type.family == "varchar"

    def test_malformed_create_is_issue_not_crash(self):
        result = parse_schema("CREATE TABLE (no name);")
        assert result.issues
        assert len(result.schema) == 0

    def test_parse_table_requires_single(self):
        with pytest.raises(SchemaError):
            parse_table("CREATE TABLE a (x INT); CREATE TABLE b (y INT);")

    def test_empty_script(self):
        result = parse_schema("")
        assert len(result.schema) == 0
        assert result.statements_total == 0

    def test_render_parse_roundtrip(self):
        original = parse_schema(
            "CREATE TABLE u (id INT NOT NULL, name VARCHAR(40) "
            "DEFAULT 'x', PRIMARY KEY (id));"
            "CREATE TABLE p (pid SERIAL, uid INT REFERENCES u(id));"
        ).schema
        reparsed = parse_schema(original.render_sql()).schema
        assert reparsed.table_names == original.table_names
        for table in original:
            other = reparsed.table(table.name)
            assert other.attribute_names == table.attribute_names
            assert other.primary_key == table.primary_key
            for attr in table.attributes:
                assert other.attribute(attr.name).data_type == attr.data_type
