"""Unit tests for the schema diff engine and change taxonomy."""

import pytest

from repro.diff import (
    ActivityBreakdown,
    ChangeKind,
    diff_ddl,
    diff_schemas,
    initial_delta,
)
from repro.sqlparser import parse_schema


def schema_of(ddl):
    return parse_schema(ddl).schema


BASE = """
CREATE TABLE users (
  id INT NOT NULL,
  name VARCHAR(40),
  email VARCHAR(100),
  PRIMARY KEY (id)
);
CREATE TABLE posts (
  pid INT NOT NULL,
  body TEXT,
  PRIMARY KEY (pid)
);
"""


class TestIdentity:
    def test_diff_self_is_empty(self):
        schema = schema_of(BASE)
        assert diff_schemas(schema, schema).is_identical

    def test_formatting_changes_are_invisible(self):
        reformatted = BASE.replace("\n  ", " ").replace("INT", "INTEGER")
        delta = diff_ddl(BASE, reformatted)
        assert delta.is_identical

    def test_comment_only_changes_are_invisible(self):
        delta = diff_ddl(BASE, "-- new comment\n" + BASE)
        assert delta.is_identical

    def test_case_changes_are_invisible(self):
        delta = diff_ddl(BASE, BASE.replace("users", "USERS"))
        assert delta.is_identical


class TestTableBirthAndDeath:
    def test_table_born(self):
        new = BASE + "CREATE TABLE tags (tid INT, label VARCHAR(20));"
        delta = diff_ddl(BASE, new)
        born = delta.by_kind(ChangeKind.BORN_WITH_TABLE)
        assert {c.attribute for c in born} == {"tid", "label"}
        assert delta.breakdown.tables_born == 1
        assert delta.total_activity == 2

    def test_table_evicted(self):
        new = BASE + "DROP TABLE posts;"
        delta = diff_ddl(BASE, new)
        dead = delta.by_kind(ChangeKind.DELETED_WITH_TABLE)
        assert {c.attribute for c in dead} == {"pid", "body"}
        assert delta.breakdown.tables_evicted == 1

    def test_rename_counts_as_death_plus_birth(self):
        new = BASE.replace("posts", "articles")
        delta = diff_ddl(BASE, new)
        assert delta.breakdown.tables_born == 1
        assert delta.breakdown.tables_evicted == 1
        assert delta.total_activity == 4  # 2 born + 2 deleted


class TestSurvivingTables:
    def test_attribute_injected(self):
        new = BASE + "ALTER TABLE users ADD COLUMN age INT;"
        delta = diff_ddl(BASE, new)
        injected = delta.by_kind(ChangeKind.INJECTED)
        assert [c.attribute for c in injected] == ["age"]
        assert delta.total_activity == 1

    def test_attribute_ejected(self):
        new = BASE + "ALTER TABLE users DROP COLUMN email;"
        delta = diff_ddl(BASE, new)
        ejected = delta.by_kind(ChangeKind.EJECTED)
        assert [c.attribute for c in ejected] == ["email"]

    def test_type_changed(self):
        new = BASE + "ALTER TABLE users MODIFY COLUMN name VARCHAR(80);"
        delta = diff_ddl(BASE, new)
        changed = delta.by_kind(ChangeKind.TYPE_CHANGED)
        assert [c.attribute for c in changed] == ["name"]
        assert "varchar(40) -> varchar(80)" in changed[0].detail

    def test_display_width_change_is_invisible(self):
        new = BASE.replace("id INT NOT NULL", "id INT(11) NOT NULL")
        assert diff_ddl(BASE, new).is_identical

    def test_pk_changed_both_directions(self):
        new = BASE.replace("PRIMARY KEY (id)", "PRIMARY KEY (email)")
        delta = diff_ddl(BASE, new)
        pk = delta.by_kind(ChangeKind.PK_CHANGED)
        assert {c.attribute for c in pk} == {"id", "email"}
        assert delta.total_activity == 2

    def test_pk_widened(self):
        new = BASE.replace("PRIMARY KEY (id)", "PRIMARY KEY (id, email)")
        delta = diff_ddl(BASE, new)
        pk = delta.by_kind(ChangeKind.PK_CHANGED)
        assert {c.attribute for c in pk} == {"email"}

    def test_pk_change_not_double_counted_with_ejection(self):
        # dropping the PK column should count the ejection, not PK change
        new = """
        CREATE TABLE users (
          name VARCHAR(40),
          email VARCHAR(100),
          PRIMARY KEY (email)
        );
        CREATE TABLE posts (
          pid INT NOT NULL,
          body TEXT,
          PRIMARY KEY (pid)
        );
        """
        delta = diff_ddl(BASE, new)
        assert [c.attribute for c in delta.by_kind(ChangeKind.EJECTED)] == [
            "id"
        ]
        pk = delta.by_kind(ChangeKind.PK_CHANGED)
        assert {c.attribute for c in pk} == {"email"}


class TestInitialDelta:
    def test_everything_born(self):
        schema = schema_of(BASE)
        delta = initial_delta(schema)
        assert delta.total_activity == schema.attribute_count
        assert all(
            c.kind is ChangeKind.BORN_WITH_TABLE for c in delta.changes
        )
        assert delta.breakdown.tables_born == 2

    def test_empty_schema_initial_delta(self):
        from repro.schema import Schema

        assert initial_delta(Schema()).total_activity == 0


class TestActivityBreakdown:
    def test_total_sums_six_counts(self):
        breakdown = ActivityBreakdown(
            born_with_table=1,
            injected=2,
            deleted_with_table=3,
            ejected=4,
            type_changed=5,
            pk_changed=6,
            tables_born=10,
            tables_evicted=10,
        )
        assert breakdown.total == 21  # table counts excluded

    def test_merge(self):
        a = ActivityBreakdown(injected=1, tables_born=1)
        b = ActivityBreakdown(injected=2, ejected=1)
        merged = a.merge(b)
        assert merged.injected == 3
        assert merged.ejected == 1
        assert merged.tables_born == 1

    def test_as_dict_has_total(self):
        assert ActivityBreakdown(injected=2).as_dict()["total"] == 2

    def test_from_changes_counts_distinct_tables(self):
        delta = diff_ddl(
            "CREATE TABLE a (x INT);",
            "CREATE TABLE a (x INT); CREATE TABLE b (y INT, z INT);",
        )
        assert delta.breakdown.tables_born == 1


class TestCombinedTransitions:
    def test_mixed_transition(self):
        new = """
        CREATE TABLE users (
          id BIGINT NOT NULL,
          name VARCHAR(40),
          age INT,
          PRIMARY KEY (id)
        );
        CREATE TABLE tags (tid INT);
        """
        delta = diff_ddl(BASE, new)
        breakdown = delta.breakdown
        assert breakdown.type_changed == 1       # id INT -> BIGINT
        assert breakdown.injected == 1           # age
        assert breakdown.ejected == 1            # email
        assert breakdown.born_with_table == 1    # tags.tid
        assert breakdown.deleted_with_table == 2  # posts.*
        assert breakdown.total == 6

    def test_delta_iteration_and_len(self):
        delta = diff_ddl(BASE, BASE + "ALTER TABLE users ADD COLUMN x INT;")
        assert len(delta) == 1
        assert [c.kind for c in delta] == [ChangeKind.INJECTED]

    def test_change_str_is_readable(self):
        delta = diff_ddl(BASE, BASE + "ALTER TABLE users ADD COLUMN x INT;")
        assert "injected: users.x" in str(delta.changes[0])
