"""Unit tests for the SQL lexer."""

import pytest

from repro.sqlparser import LexError, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)]


class TestBasics:
    def test_words_and_punctuation(self):
        tokens = tokenize("CREATE TABLE t (a int);")
        assert [t.value for t in tokens] == [
            "CREATE", "TABLE", "t", "(", "a", "int", ")", ";",
        ]

    def test_token_types(self):
        assert kinds("t (,);") == [
            TokenType.WORD,
            TokenType.LPAREN,
            TokenType.COMMA,
            TokenType.RPAREN,
            TokenType.SEMICOLON,
        ]

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e10")
        assert all(t.type is TokenType.NUMBER for t in tokens)

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens] == [1, 2, 3]

    def test_empty_input(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize(" \n\t ") == []


class TestComments:
    def test_dash_comment_to_eol(self):
        assert values("a -- comment\nb") == ["a", "b"]

    def test_hash_comment(self):
        assert values("a # comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* hidden */ b") == ["a", "b"]

    def test_block_comment_multiline(self):
        tokens = tokenize("a /* line1\nline2 */ b")
        assert [t.value for t in tokens] == ["a", "b"]
        assert tokens[1].line == 2

    def test_mysql_hint_re_lexed(self):
        assert values("/*!40101 SET NAMES utf8 */") == ["SET", "NAMES", "utf8"]

    def test_unterminated_block_comment_lenient(self):
        assert values("a /* never ends") == ["a"]

    def test_unterminated_block_comment_strict(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends", strict=True)


class TestStrings:
    def test_single_quoted(self):
        tokens = tokenize("'hello'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_backslash_escape(self):
        assert tokenize(r"'a\'b'")[0].value == "a'b"

    def test_dollar_quoted(self):
        tokens = tokenize("$$ body; with ; semicolons $$")
        assert tokens[0].type is TokenType.STRING
        assert "semicolons" in tokens[0].value

    def test_tagged_dollar_quote(self):
        tokens = tokenize("$fn$ SELECT 1; $fn$")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value.strip() == "SELECT 1;"

    def test_unterminated_string_strict(self):
        with pytest.raises(LexError):
            tokenize("'open", strict=True)

    def test_unterminated_string_lenient(self):
        tokens = tokenize("'open")
        assert tokens[0].value == "open"


class TestQuotedIdentifiers:
    def test_backticks(self):
        tokens = tokenize("`my table`")
        assert tokens[0].type is TokenType.QUOTED
        assert tokens[0].value == "my table"

    def test_double_quotes(self):
        tokens = tokenize('"MyTable"')
        assert tokens[0].type is TokenType.QUOTED
        assert tokens[0].value == "MyTable"

    def test_brackets(self):
        tokens = tokenize("[weird name]")
        assert tokens[0].type is TokenType.QUOTED
        assert tokens[0].value == "weird name"

    def test_doubled_double_quote(self):
        assert tokenize('"a""b"')[0].value == 'a"b'

    def test_is_name_helper(self):
        quoted, word = tokenize("`q` w")
        assert quoted.is_name()
        assert word.is_name()
        assert not tokenize("42")[0].is_name()


class TestRobustness:
    def test_unknown_bytes_become_ops(self):
        tokens = tokenize("a @ b")
        assert tokens[1].type is TokenType.OP
        assert tokens[1].value == "@"

    def test_is_word_case_insensitive(self):
        token = tokenize("create")[0]
        assert token.is_word("CREATE")
        assert not token.is_word("TABLE")

    def test_quoted_is_never_keyword(self):
        token = tokenize("`create`")[0]
        assert not token.is_word("CREATE")
