"""The (dialect, source) workload interface, end to end.

Covers the plugin layers the sqlite study rides on: the workload and
history-source registries, per-dialect corpus emission re-parsing under
the untouched reference oracles (``tokenize_reference`` /
``diff_schemas_reference`` / ``parse_history_reference``), mixed-dialect
detection as a property over fragment permutations, the dialect
component of shard identities, provenance attribution of a workload
switch, and the run registry's tolerance for pre-dialect records.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import DEFAULT_SEED, generate_corpus, scaled_profiles
from repro.mining import get_source, registered_sources
from repro.mining.history import SchemaHistory, parse_history_reference
from repro.vcs import FileVersion, synthetic_sha, utc
from repro.workload import (
    DEFAULT_WORKLOAD,
    SQLITE_WORKLOAD,
    get_workload,
    registered_workloads,
)

SMALL_SCALE = 32  # a handful of projects per workload keeps this fast


# ----------------------------------------------------------------------
# registries


class TestWorkloadRegistry:
    def test_default_resolution(self):
        assert get_workload(None) is DEFAULT_WORKLOAD
        assert get_workload("default") is DEFAULT_WORKLOAD
        assert get_workload("sqlite") is SQLITE_WORKLOAD

    def test_unknown_workload_names_the_registry(self):
        with pytest.raises(KeyError) as err:
            get_workload("oracle")
        assert "sqlite" in str(err.value)

    def test_builtins_registered(self):
        names = registered_workloads()
        assert "default" in names and "sqlite" in names

    def test_vendor_mixes_share_a_length(self):
        # the corpus RNG draws one vendor per project via rng.choice —
        # equal mix lengths keep every other sampled property (names,
        # seeds, durations) on the same stream across workloads
        lengths = {
            len(get_workload(name).vendor_mix)
            for name in registered_workloads()
        }
        assert lengths == {3}

    def test_sqlite_workload_pairs_dialect_and_source(self):
        assert SQLITE_WORKLOAD.source == "sqlite"
        assert SQLITE_WORKLOAD.dialect_hint == "sqlite"
        assert set(SQLITE_WORKLOAD.vendor_mix) == {"sqlite"}


class TestHistorySources:
    def test_builtins_registered(self):
        names = registered_sources()
        assert "ddl" in names and "sqlite" in names

    def test_sqlite_source_carries_the_dialect_hint(self):
        assert get_source("sqlite").dialect_hint == "sqlite"
        assert get_source("ddl").dialect_hint is None

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            get_source("svn")


# ----------------------------------------------------------------------
# every registered workload's corpus re-parses under the oracles


def _dialect_arg(name: str) -> str | None:
    return None if name == "default" else name


@pytest.mark.parametrize("workload", sorted(registered_workloads()))
class TestCorpusOracleRoundTrip:
    def _corpus(self, workload):
        return generate_corpus(
            seed=DEFAULT_SEED,
            profiles=scaled_profiles(SMALL_SCALE),
            dialect=_dialect_arg(workload),
        )

    def test_tokenizer_equivalence(self, workload):
        from repro.sqlparser import tokenize
        from repro.sqlparser.lexer import tokenize_reference

        for project in self._corpus(workload):
            for text in project.ddl_versions:
                assert tokenize(text) == tokenize_reference(text)

    def test_history_matches_reference_parse_and_diff(self, workload):
        from repro.diff.engine import diff_schemas_reference

        hint = get_workload(_dialect_arg(workload)).dialect_hint
        for project in self._corpus(workload):
            versions = [
                FileVersion(synthetic_sha(i), utc(2020, 1 + i % 12), text)
                for i, text in enumerate(project.ddl_versions)
            ]
            incremental = SchemaHistory.from_file_versions(
                versions, dialect=hint
            )
            reference = parse_history_reference(versions, dialect=hint)
            assert len(incremental.versions) == len(reference.versions)
            for inc, ref in zip(incremental.versions, reference.versions):
                assert inc.schema == ref.schema
                assert inc.issues == ref.issues
            for inc, ref in zip(
                incremental.transitions, reference.transitions
            ):
                assert inc.delta == ref.delta
            for i in range(1, len(incremental.versions)):
                assert incremental.transitions[
                    i
                ].delta == diff_schemas_reference(
                    incremental.versions[i - 1].schema,
                    incremental.versions[i].schema,
                )

    def test_vendors_come_from_the_workload_mix(self, workload):
        mix = set(get_workload(_dialect_arg(workload)).vendor_mix)
        vendors = {p.spec.vendor for p in self._corpus(workload)}
        assert vendors <= mix


# ----------------------------------------------------------------------
# mixed-dialect detection over fragment permutations

_STATEMENTS = (
    "CREATE TABLE `a` (x int);",
    "CREATE TABLE b (x int) ENGINE=InnoDB;",
    "# mysql executable comment",
    "CREATE TABLE c (id INTEGER PRIMARY KEY AUTOINCREMENT);",
    "CREATE TABLE kv (k TEXT, v TEXT) WITHOUT ROWID;",
    "PRAGMA user_version = 7;",
    "CREATE TABLE d (id SERIAL PRIMARY KEY);",
    "CREATE TABLE e (payload BYTEA, at TIMESTAMPTZ);",
    "CREATE TABLE f (x int);",
    "CREATE TABLE IF NOT EXISTS users (id INT);",
    "INSERT INTO sqlite_sequence VALUES ('users', 1);",
)

_statement_lists = st.lists(
    st.sampled_from(_STATEMENTS), min_size=1, max_size=8
)


class TestMixedDialectDetection:
    @given(statements=_statement_lists)
    @settings(max_examples=60, deadline=None)
    def test_fragment_mask_or_equals_monolithic_detection(self, statements):
        from repro.sqlparser import detect_dialect
        from repro.sqlparser.dialect import (
            dialect_from_mask,
            fragment_signal_mask,
            whole_text_signal_mask,
        )
        from repro.sqlparser.segment import segment_statements

        text = "\n".join(statements)
        segments = segment_statements(text)
        assert segments is not None
        mask = whole_text_signal_mask(text)
        for segment in segments:
            mask |= fragment_signal_mask(" " + segment.text)
        assert dialect_from_mask(mask) == detect_dialect(text)

    @given(statements=_statement_lists, seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_detection_is_permutation_invariant(self, statements, seed):
        from repro.sqlparser import detect_dialect

        shuffled = list(statements)
        random.Random(seed).shuffle(shuffled)
        assert detect_dialect("\n".join(shuffled)) == detect_dialect(
            "\n".join(statements)
        )


# ----------------------------------------------------------------------
# shard identity, provenance, and registry records


class TestDialectShardIdentity:
    def _pair(self):
        from repro.corpus.generator import corpus_specs
        from repro.corpus.profiles import scaled_profiles as scaled

        return corpus_specs(DEFAULT_SEED, scaled(SMALL_SCALE))[0]

    def test_default_identity_has_no_dialect_key(self):
        from repro.pipeline.shards import plan_shard
        from repro.pipeline.stages import CODE_VERSIONS

        spec, profile = self._pair()
        shard = plan_shard(0, spec, profile, CODE_VERSIONS)
        assert "dialect" not in shard.identity

    def test_dialect_re_keys_every_map_stage(self):
        from repro.pipeline.shards import plan_shard
        from repro.pipeline.stages import CODE_VERSIONS

        spec, profile = self._pair()
        plain = plan_shard(0, spec, profile, CODE_VERSIONS)
        dialected = plan_shard(
            0, spec, profile, CODE_VERSIONS, dialect="sqlite"
        )
        assert dialected.identity["dialect"] == "sqlite"
        for stage in ("generate", "mine", "analyze"):
            assert plain.keys[stage] != dialected.keys[stage]

    def test_explain_attributes_a_workload_switch(self):
        from repro.obs.provenance import diff_components

        stored = {
            "code_version": "2",
            "params": {"project": "p", "spec": "s0", "profile": "t0"},
        }
        current = {
            "code_version": "2",
            "params": {
                "project": "p",
                "spec": "s1",
                "profile": "t0",
                "dialect": "sqlite",
            },
        }
        labels = [c["label"] for c in diff_components(current, stored)]
        assert "params.dialect added (sqlite)" in labels


class TestRegistryDialectColumn:
    def _study(self):
        from repro.pipeline.graph import Pipeline

        return Pipeline(seed=DEFAULT_SEED, scale=SMALL_SCALE).study()

    def test_record_carries_dialect_only_when_set(self):
        from repro.obs.registry import build_run_record

        study = self._study()
        plain = build_run_record(command="t", study=study)
        tagged = build_run_record(
            command="t", study=study, dialect="sqlite"
        )
        assert "dialect" not in plain
        assert tagged["dialect"] == "sqlite"

    def test_history_baseline_tolerates_pre_dialect_records(self):
        from repro.obs.registry import build_run_record, history_baseline

        study = self._study()
        records = [
            build_run_record(command="t", study=study),  # pre-dialect
            build_run_record(command="t", study=study, dialect="sqlite"),
        ]
        merged = history_baseline(records)
        assert merged["dialect"] == "sqlite"
        merged = history_baseline(list(reversed(records)))
        assert merged["dialect"] is None

    def test_obs_history_renders_pre_dialect_rows(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.registry import RunRegistry, build_run_record

        study = self._study()
        registry = RunRegistry(tmp_path)
        old = build_run_record(command="study", study=study)
        old.pop("dialect", None)  # a record written before workloads
        registry.append(old)
        registry.append(
            build_run_record(
                command="study", study=study, dialect="sqlite"
            )
        )
        code = main(["obs", "history", "--store-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "dialect" in out
        rows = [
            line for line in out.splitlines() if line.startswith("study ")
        ] or [
            line
            for line in out.splitlines()
            if " study " in f" {line} "
        ]
        assert len(rows) >= 2

    def test_status_json_carries_the_dialect(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "pipeline", "status", "--json",
            "--scale", str(SMALL_SCALE),
            "--dialect", "sqlite",
            "--store-dir", str(tmp_path / "store"),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["dialect"] == "sqlite"
