"""Unit tests for live run monitoring (`repro.obs.progress`).

The heartbeat contract: trackers emit schema-valid ``progress`` records
to whatever listens (event-log sink, TTY stream), throttled by the
channel interval, with the final state always emitted exactly once —
and with nothing listening, an update is just a counter bump.
"""

import io

import pytest

from repro.obs.events import validate_event
from repro.obs.progress import (
    DEFAULT_INTERVAL,
    PROGRESS_INTERVAL_ENV,
    TOP_SLOWEST,
    ProgressChannel,
    ProgressTracker,
    get_progress,
    progress_event,
    render_progress_line,
    reset_progress,
)
from repro.perf.timing import StudyTimings


class FakeClock:
    """A monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def channel():
    """An unthrottled channel capturing every record in ``.records``."""
    chan = ProgressChannel()
    chan.records = []
    chan.sink = chan.records.append
    chan.interval = 0.0
    return chan


@pytest.fixture(autouse=True)
def _fresh_global():
    yield
    reset_progress()


class TestProgressEvent:
    def test_record_validates(self):
        record = progress_event("mine_analyze", 3, 12, 4.5,
                                [(0.25, "acme/registry-000")])
        assert validate_event(record) == []
        assert record["done"] == 3
        assert record["percent"] == 25.0
        assert record["slowest"] == [
            {"name": "acme/registry-000", "seconds": 0.25}
        ]

    def test_zero_total_is_complete(self):
        record = progress_event("empty", 0, 0, 0.0, [])
        assert record["percent"] == 100.0
        assert validate_event(record) == []

    def test_negative_eta_clamped(self):
        assert progress_event("s", 1, 2, -3.0, [])["eta_seconds"] == 0.0


class TestRenderProgressLine:
    def test_mid_run_line(self):
        line = render_progress_line(progress_event(
            "mine_analyze", 6, 12, 3.2, [(0.25, "acme/registry-000")]
        ))
        assert line == (
            "mine_analyze 6/12 (50%) eta 3.2s "
            "slowest acme/registry-000 (0.25s)"
        )

    def test_finished_line_drops_the_eta(self):
        line = render_progress_line(progress_event("generate", 12, 12,
                                                   0.0, []))
        assert line == "generate 12/12 (100%)"

    def test_long_eta_renders_minutes(self):
        line = render_progress_line(progress_event("mine", 1, 100,
                                                   65.0, []))
        assert "eta 1m05s" in line


class TestProgressTracker:
    def test_emits_every_update_when_unthrottled(self, channel):
        tracker = ProgressTracker("stage", 3, channel=channel,
                                  clock=FakeClock())
        for name in ("a", "b", "c"):
            tracker.update(name, 0.1)
        assert [r["done"] for r in channel.records] == [1, 2, 3]
        for record in channel.records:
            assert validate_event(record) == []
            assert record["stage"] == "stage"
            assert record["total"] == 3

    def test_interval_throttles_mid_run_heartbeats(self, channel):
        clock = FakeClock()
        channel.interval = 10.0
        tracker = ProgressTracker("stage", 5, channel=channel, clock=clock)
        for _ in range(4):
            tracker.update()
            clock.tick(1.0)
        # first update emitted, the next three fell inside the window
        assert [r["done"] for r in channel.records] == [1]
        tracker.update()  # done == total always emits
        assert [r["done"] for r in channel.records] == [1, 5]

    def test_finish_emits_the_pending_state_once(self, channel):
        channel.interval = 10.0
        tracker = ProgressTracker("stage", 4, channel=channel,
                                  clock=FakeClock())
        for _ in range(3):
            tracker.update()
        tracker.finish()
        assert [r["done"] for r in channel.records] == [1, 3]
        # a second finish (or a finish right after the final update)
        # never duplicates the record
        tracker.finish()
        assert [r["done"] for r in channel.records] == [1, 3]

    def test_no_listener_means_no_records(self, channel):
        channel.sink = None
        tracker = ProgressTracker("stage", 2, channel=channel)
        tracker.update("a", 1.0)
        tracker.finish()
        assert channel.records == []
        assert tracker.done == 1
        assert tracker.slowest == []  # not even book-keeping runs

    def test_slowest_keeps_the_top_entries_sorted(self, channel):
        tracker = ProgressTracker("stage", 5, channel=channel,
                                  clock=FakeClock())
        for name, seconds in (("a", 0.1), ("b", 0.5), ("c", 0.3),
                              ("d", 0.9), ("e", 0.2)):
            tracker.update(name, seconds)
        slowest = channel.records[-1]["slowest"]
        assert len(slowest) == TOP_SLOWEST
        assert [s["name"] for s in slowest] == ["d", "b", "c"]
        assert [s["seconds"] for s in slowest] == [0.9, 0.5, 0.3]

    def test_eta_from_study_timings(self, channel):
        # 4 summed worker-seconds over 2 done, 4 remaining, jobs=2:
        # 4/2 * 4 / 2 = 4 wall seconds
        timings = StudyTimings(jobs=2)
        timings.record("mine", 3.0)
        timings.record("analyze", 1.0)
        tracker = ProgressTracker("mine_analyze", 6, channel=channel,
                                  timings=timings, clock=FakeClock())
        tracker.update()
        tracker.update()
        assert channel.records[-1]["eta_seconds"] == 4.0

    def test_eta_falls_back_to_wall_clock(self, channel):
        clock = FakeClock()
        tracker = ProgressTracker("generate", 4, channel=channel,
                                  clock=clock)
        clock.tick(2.0)
        tracker.update()
        clock.tick(2.0)
        tracker.update()
        # 4 s elapsed over 2 done -> 2 s per item, 2 remaining
        assert channel.records[-1]["eta_seconds"] == 4.0

    def test_empty_timings_fall_back_to_wall_clock(self, channel):
        clock = FakeClock()
        tracker = ProgressTracker("stage", 4, channel=channel,
                                  timings=StudyTimings(), clock=clock)
        clock.tick(1.0)
        tracker.update()
        assert channel.records[-1]["eta_seconds"] == 3.0


class _Tty(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestChannelStream:
    def test_plain_stream_gets_one_line_per_heartbeat(self):
        chan = ProgressChannel()
        chan.interval = 0.0
        chan.stream = io.StringIO()
        tracker = ProgressTracker("stage", 2, channel=chan)
        tracker.update()
        tracker.update()
        chan.close_line()
        lines = chan.stream.getvalue().splitlines()
        assert lines == ["stage 1/2 (50%) eta 0.0s", "stage 2/2 (100%)"]

    def test_tty_stream_refreshes_in_place(self):
        chan = ProgressChannel()
        chan.interval = 0.0
        chan.stream = _Tty()
        tracker = ProgressTracker("stage", 2, channel=chan)
        tracker.update()
        tracker.update()
        out = chan.stream.getvalue()
        assert out.startswith("\r")
        assert out.count("\r") == 2
        assert "\n" not in out
        chan.close_line()
        assert chan.stream.getvalue().endswith("\n")

    def test_tty_refresh_pads_over_a_longer_previous_line(self):
        chan = ProgressChannel()
        chan.stream = _Tty()
        chan._write_line("a long progress line")
        chan._write_line("short")
        last = chan.stream.getvalue().rsplit("\r", 1)[1]
        assert last.startswith("short")
        assert len(last) == len("a long progress line")

    def test_close_line_is_a_no_op_without_a_tty(self):
        chan = ProgressChannel()
        chan.stream = io.StringIO()
        chan.close_line()  # nothing written, nothing raised
        assert chan.stream.getvalue() == ""

    def test_deliver_fans_out_to_both(self):
        chan = ProgressChannel()
        seen = []
        chan.sink = seen.append
        chan.stream = io.StringIO()
        record = progress_event("stage", 1, 2, 0.5, [])
        chan.deliver(record)
        assert seen == [record]
        assert "stage 1/2" in chan.stream.getvalue()


class TestChannelConfig:
    def test_interval_env_override(self, monkeypatch):
        monkeypatch.setenv(PROGRESS_INTERVAL_ENV, "5")
        assert ProgressChannel().interval == 5.0

    def test_bad_interval_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(PROGRESS_INTERVAL_ENV, "soon")
        assert ProgressChannel().interval == DEFAULT_INTERVAL

    def test_negative_interval_env_clamped(self, monkeypatch):
        monkeypatch.setenv(PROGRESS_INTERVAL_ENV, "-3")
        assert ProgressChannel().interval == 0.0

    def test_global_channel_resets(self):
        first = get_progress()
        first.sink = lambda record: None
        fresh = reset_progress()
        assert fresh is get_progress()
        assert fresh is not first
        assert not fresh.active

    def test_active_property(self):
        chan = ProgressChannel()
        assert not chan.active
        chan.stream = io.StringIO()
        assert chan.active


class TestStudyIntegration:
    def test_both_fanout_stages_heartbeat(self):
        from dataclasses import replace

        from repro.analysis import run_study
        from repro.corpus import generate_corpus
        from repro.corpus.profiles import CANONICAL_PROFILES

        records = []
        channel = reset_progress()
        channel.interval = 0.0
        channel.sink = records.append
        try:
            profiles = (replace(CANONICAL_PROFILES[0], count=3),)
            corpus = generate_corpus(seed=11, profiles=profiles)
            study = run_study(corpus)
        finally:
            reset_progress()
        assert len(study) + len(study.skipped) == 3
        stages = {r["stage"] for r in records}
        assert stages == {"generate", "mine_analyze"}
        finals = [r for r in records if r["stage"] == "mine_analyze"]
        assert finals[-1]["done"] == finals[-1]["total"] == 3
        assert all(validate_event(r) == [] for r in records)
