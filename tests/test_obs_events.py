"""Unit tests for structured run events: recorder, JSONL log, validator.

Every ``--log-json`` line must satisfy :data:`repro.obs.events.
EVENT_FIELDS`; these tests pin the schema from both sides — records the
pipeline emits always validate, and malformed records are rejected with
a specific problem message.
"""

import json

import pytest

from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EventLog,
    EventRecorder,
    aggregate_warnings,
    get_recorder,
    provenance_event,
    reset_recorder,
    resource_event,
    run_event,
    span_event,
    validate_event,
    validate_event_line,
    validate_event_log,
    warn,
)
from repro.obs.metrics import get_metrics, reset_metrics
from repro.obs.trace import Span


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


class TestEventRecorder:
    def test_warn_records_and_returns_the_event(self):
        recorder = EventRecorder()
        record = recorder.warn(
            "ddl-unparseable", "version deadbeef parsed empty", sha="deadbeef"
        )
        assert record["event"] == "warning"
        assert record["code"] == "ddl-unparseable"
        assert record["context"] == {"sha": "deadbeef"}
        assert recorder.warnings == [record]
        assert validate_event(record) == []

    def test_warnings_count_into_metrics(self):
        get_recorder().warn("empty-history", "p: zero activity")
        get_recorder().warn("empty-history", "q: zero activity")
        assert get_metrics().counter("warnings.empty-history") == 2

    def test_sink_sees_every_delivery(self):
        recorder = EventRecorder()
        seen = []
        recorder.sink = seen.append
        recorder.warn("a", "first")
        recorder.replay({"event": "warning", "ts": 0.0, "code": "b",
                         "message": "from a worker", "context": {}})
        assert [r["code"] for r in seen] == ["a", "b"]
        assert len(recorder.warnings) == 2

    def test_mark_since_window(self):
        recorder = EventRecorder()
        recorder.warn("before", "outside the window")
        mark = recorder.mark()
        recorder.warn("inside-1", "m")
        recorder.warn("inside-2", "m")
        window = recorder.since(mark)
        assert [r["code"] for r in window] == ["inside-1", "inside-2"]
        # the window is picklable plain data
        assert json.loads(json.dumps(window)) == window

    def test_module_level_warn_uses_the_active_recorder(self):
        record = warn("cache-dir-degraded", "dir unusable", cache_dir="/x")
        assert get_recorder().warnings == [record]


class TestAggregateWarnings:
    def test_groups_by_code_in_first_seen_order(self):
        warnings = [
            {"code": "b", "message": "b-one"},
            {"code": "a", "message": "a-one"},
            {"code": "b", "message": "b-two"},
            {"code": "b", "message": "b-three"},
        ]
        assert aggregate_warnings(warnings) == [
            {"code": "b", "count": 3, "first_message": "b-one"},
            {"code": "a", "count": 1, "first_message": "a-one"},
        ]

    def test_empty_input(self):
        assert aggregate_warnings([]) == []


class TestEventShapes:
    def test_span_event_validates(self):
        span = Span("mine", attributes={"versions": 3},
                    started_at=1700000000.5, seconds=0.25)
        record = span_event(span)
        assert record["name"] == "mine"
        assert record["attributes"] == {"versions": 3}
        assert validate_event(record) == []

    def test_run_event_validates(self):
        record = run_event("study", "ok")
        assert record["command"] == "study"
        assert validate_event(record) == []


class TestSchemaV2Events:
    def test_resource_event_validates(self):
        record = resource_event(
            "workers", {"peak_rss_bytes": 123 * 2**20, "cpu_seconds": 4.5}
        )
        assert record["schema"] == EVENT_SCHEMA_VERSION
        assert record["scope"] == "workers"
        assert record["peak_rss_bytes"] == 123 * 2**20
        assert validate_event(record) == []

    def test_resource_event_tolerates_missing_fields(self):
        record = resource_event("driver", {})
        assert record["peak_rss_bytes"] == 0
        assert record["cpu_seconds"] == 0.0
        assert validate_event(record) == []

    def test_provenance_event_validates(self):
        record = provenance_event({
            "stage": "mine",
            "project": "a/b",
            "state": "stale",
            "causes": [{"component": "code_version",
                        "label": "code_version bumped 2→3"}],
        })
        assert record["schema"] == EVENT_SCHEMA_VERSION
        assert record["causes"] == ["code_version bumped 2→3"]
        assert record["project"] == "a/b"
        assert validate_event(record) == []

    def test_provenance_event_omits_a_missing_project(self):
        record = provenance_event(
            {"stage": "aggregate", "state": "warm", "causes": []}
        )
        assert "project" not in record
        assert validate_event(record) == []


class TestForwardCompatibility:
    """Satellite 2: unknown-but-well-formed event kinds must pass."""

    def test_unknown_kind_with_schema_field_is_tolerated(self):
        assert validate_event(
            {"event": "gc-pause", "ts": 1.0, "schema": 3,
             "pause_ms": 12.5}
        ) == []

    def test_unknown_kind_without_schema_stays_an_error(self):
        problems = validate_event({"event": "gc-pause", "ts": 1.0})
        assert problems and "unknown event kind" in problems[0]

    def test_boolean_schema_does_not_count(self):
        # bool is an int subclass; a True schema is not a version claim
        assert validate_event(
            {"event": "gc-pause", "ts": 1.0, "schema": True}
        ) != []

    def test_non_numeric_ts_does_not_count(self):
        assert validate_event(
            {"event": "gc-pause", "ts": "noon", "schema": 3}
        ) != []

    def test_log_with_a_future_event_validates_clean(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit(run_event("study", "ok"))
            log.emit({"event": "from-the-future", "ts": 1.0,
                      "schema": EVENT_SCHEMA_VERSION + 1, "extra": [1]})
        count, problems = validate_event_log(path)
        assert count == 2
        assert problems == []


class TestValidator:
    def test_unknown_kind(self):
        assert validate_event({"event": "mystery"}) == [
            "unknown event kind 'mystery' "
            "(no schema field to claim forward compatibility)"
        ]
        assert validate_event({"no": "event"})[0].startswith("unknown")
        assert validate_event("not an object") == [
            "record is not a JSON object"
        ]

    def test_missing_and_extra_fields(self):
        problems = validate_event(
            {"event": "run", "ts": 1.0, "command": "study",
             "status": "ok", "surprise": 1}
        )
        assert problems == ["unexpected field 'surprise'"]
        problems = validate_event({"event": "run", "ts": 1.0, "status": "ok"})
        assert "missing field 'command'" in problems

    def test_wrong_field_type(self):
        record = run_event("study", "ok")
        record["ts"] = "noon"
        assert any("field 'ts' has type str" in p
                   for p in validate_event(record))

    def test_status_must_be_ok_or_error(self):
        record = run_event("study", "weird")
        assert "status 'weird' not in ok/error" in validate_event(record)

    def test_negative_seconds(self):
        record = span_event(Span("s"))
        record["seconds"] = -0.1
        assert "negative seconds" in validate_event(record)

    def test_validate_event_line_rejects_bad_json(self):
        assert validate_event_line("{not json")[0].startswith("invalid JSON")
        assert validate_event_line(json.dumps(run_event("x", "ok"))) == []


class TestEventLog:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "sub" / "events.jsonl"
        with EventLog(path) as log:
            log.emit(run_event("study", "ok"))
            log.emit(warn("empty-history", "p: skipped", project="p"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "run"
        assert json.loads(lines[1])["code"] == "empty-history"

    def test_validate_event_log_accepts_its_own_output(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit(span_event(Span("mine", seconds=0.1)))
            log.emit(run_event("study", "ok"))
        count, problems = validate_event_log(path)
        assert count == 2
        assert problems == []

    def test_validate_event_log_pinpoints_bad_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(run_event("study", "ok")) + "\n"
            + "\n"
            + "{broken\n"
            + json.dumps({"event": "nope"}) + "\n"
        )
        count, problems = validate_event_log(path)
        assert count == 3  # the empty line is a problem, not an event
        assert any(p.startswith("line 2: empty line") for p in problems)
        assert any(p.startswith("line 3: invalid JSON") for p in problems)
        assert any("unknown event kind" in p for p in problems)

    def test_empty_file_is_clean(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        assert validate_event_log(path) == (0, [])

    def test_truncated_final_line_is_pinpointed(self, tmp_path):
        # a killed writer leaves a partial record with no newline
        path = tmp_path / "events.jsonl"
        full = json.dumps(run_event("study", "ok"))
        path.write_text(full + "\n" + full[: len(full) // 2])
        count, problems = validate_event_log(path)
        assert count == 2  # the fragment still counts as a line
        assert problems == [p for p in problems if p.startswith("line 2")]
        assert "invalid JSON" in problems[0]

    def test_interleaved_writers_stay_line_clean(self, tmp_path):
        # two streams whose complete lines were appended alternately
        # (the JSONL contract: interleaving whole lines is always safe)
        path = tmp_path / "events.jsonl"
        spans = [
            json.dumps(span_event(Span(f"a{i}", seconds=0.1)))
            for i in range(3)
        ]
        warns = [
            json.dumps({"event": "warning", "ts": 0.0, "code": f"w{i}",
                        "message": "m", "context": {}})
            for i in range(3)
        ]
        lines = [line for pair in zip(spans, warns) for line in pair]
        path.write_text("\n".join(lines) + "\n")
        count, problems = validate_event_log(path)
        assert count == 6
        assert problems == []

    def test_jammed_records_on_one_line_are_caught(self, tmp_path):
        # two writers racing without line buffering jam two records
        # onto one line; the validator pinpoints it and keeps going
        path = tmp_path / "events.jsonl"
        record = json.dumps(run_event("study", "ok"))
        path.write_text(record + record + "\n" + record + "\n")
        count, problems = validate_event_log(path)
        assert count == 2
        assert len(problems) == 1
        assert problems[0].startswith("line 1: invalid JSON")


class TestProgressEvents:
    def _record(self, **overrides):
        record = {
            "event": "progress",
            "ts": 1700000000.0,
            "stage": "mine_analyze",
            "done": 3,
            "total": 12,
            "percent": 25.0,
            "eta_seconds": 4.5,
            "slowest": [{"name": "acme/registry-000", "seconds": 0.25}],
        }
        record.update(overrides)
        return record

    def test_well_formed_record_validates(self):
        assert validate_event(self._record()) == []

    def test_progress_lines_validate_in_a_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit(self._record(done=1, percent=8.3))
            log.emit(self._record(done=12, percent=100.0, slowest=[]))
            log.emit(run_event("study", "ok"))
        count, problems = validate_event_log(path)
        assert count == 3
        assert problems == []

    def test_done_beyond_total_rejected(self):
        assert "done outside [0, total]" in validate_event(
            self._record(done=13)
        )
        assert "done outside [0, total]" in validate_event(
            self._record(done=-1)
        )

    def test_negative_eta_rejected(self):
        assert "negative eta_seconds" in validate_event(
            self._record(eta_seconds=-0.5)
        )

    def test_malformed_slowest_entries_rejected(self):
        problems = validate_event(
            self._record(slowest=["acme/registry-000"])
        )
        assert problems == ["slowest[0] is not a {name, seconds} object"]
        problems = validate_event(
            self._record(slowest=[{"name": "x", "seconds": "fast"}])
        )
        assert problems == ["slowest[0] is not a {name, seconds} object"]

    def test_missing_fields_rejected(self):
        record = self._record()
        del record["stage"]
        assert "missing field 'stage'" in validate_event(record)

    def test_unexpected_fields_rejected(self):
        assert "unexpected field 'speed'" in validate_event(
            self._record(speed=9000)
        )
