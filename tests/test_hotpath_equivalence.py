"""Equivalence guards for the hot-path micro-optimisations.

The master-regex lexer and the index-reusing diff engine replace the
original implementations on the mining hot path; both originals are
kept (``tokenize_reference`` / ``diff_schemas_reference``) as oracles,
and these tests require byte-identical behaviour over adversarial
inputs and real generator output.
"""

import pytest

from repro.corpus import ProjectSpec, generate_project, profile_for
from repro.diff import diff_schemas, diff_schemas_reference
from repro.heartbeat import Month
from repro.sqlparser import (
    LexError,
    parse_schema,
    tokenize,
    tokenize_reference,
)
from repro.taxa import Taxon

ADVERSARIAL = [
    "",
    "   \n\t\r ",
    "CREATE TABLE t (a INT);",
    "-- line comment\n# mysql comment\nSELECT 1;",
    "/* block */ /*!40101 SET NAMES utf8 */;",
    "/*!50003 CREATE TABLE hinted (x INT) */;",
    "'literal''escaped' 'back\\'slash'",
    '"quoted id" `backtick` [bracketed] `esc\\`aped`',
    "$$dollar body$$ $tag$ tagged body $tag$",
    "$notatag $x foo$bar $ lone",
    "123 1.5 1.5e10 9E-3 12abc 0x not_hex",
    "a = b <> c != d || e && f ^ ~ %",
    "multi\nline\n'string\nwith\nnewlines'\nafter",
    "unterminated '",
    "unterminated `",
    "unterminated \"",
    "unterminated /* block",
    "unterminated $tag$ body",
    "[ no closing bracket",
    "é ünïcode § 表名",
    ";;;(((,,,)))",
    "#comment at eof",
    "-- comment at eof",
    "-",
    "$",
]

STRICT_FAILING = [
    "'open",
    "`open",
    '"open',
    "/* open",
    "$t$ open",
]


def _corpus_scripts():
    scripts = []
    for seed, taxon, vendor in [
        (3, Taxon.ACTIVE, "mysql"),
        (4, Taxon.MODERATE, "postgres"),
        (5, Taxon.FOCUSED_SHOT_AND_LOW, "mysql"),
    ]:
        spec = ProjectSpec(
            name=f"equiv/{seed}",
            taxon=taxon,
            seed=seed,
            vendor=vendor,
            duration_months=36,
            start=Month(2012, 1),
        )
        project = generate_project(spec, profile_for(taxon))
        scripts.extend(project.ddl_versions)
    return scripts


class TestLexerEquivalence:
    @pytest.mark.parametrize("text", ADVERSARIAL)
    def test_adversarial_token_streams_identical(self, text):
        assert tokenize(text) == tokenize_reference(text)

    def test_generated_ddl_token_streams_identical(self):
        scripts = _corpus_scripts()
        assert scripts
        for script in scripts:
            assert tokenize(script) == tokenize_reference(script)

    @pytest.mark.parametrize("text", STRICT_FAILING)
    def test_strict_mode_raises_identically(self, text):
        with pytest.raises(LexError):
            tokenize(text, strict=True)
        with pytest.raises(LexError):
            tokenize_reference(text, strict=True)

    @pytest.mark.parametrize("text", ADVERSARIAL)
    def test_line_numbers_identical(self, text):
        fast = [t.line for t in tokenize(text)]
        ref = [t.line for t in tokenize_reference(text)]
        assert fast == ref


class TestDiffEquivalence:
    def test_generated_version_pairs_identical(self):
        scripts = _corpus_scripts()
        schemas = [parse_schema(script).schema for script in scripts]
        pairs = 0
        for old, new in zip(schemas, schemas[1:]):
            fast = diff_schemas(old, new)
            reference = diff_schemas_reference(old, new)
            assert fast.changes == reference.changes
            pairs += 1
        assert pairs > 0

    def test_reversed_pairs_identical(self):
        scripts = _corpus_scripts()[:6]
        schemas = [parse_schema(script).schema for script in scripts]
        for old, new in zip(schemas, schemas[1:]):
            assert (
                diff_schemas(new, old).changes
                == diff_schemas_reference(new, old).changes
            )

    def test_pk_and_type_changes_identical(self):
        old = parse_schema(
            "CREATE TABLE t (a INT, b INT, c TEXT, PRIMARY KEY (a));"
        ).schema
        new = parse_schema(
            "CREATE TABLE t (a INT, b BIGINT, d TEXT, PRIMARY KEY (b));"
        ).schema
        assert (
            diff_schemas(old, new).changes
            == diff_schemas_reference(old, new).changes
        )
