"""Unit tests for the hierarchical span tracer.

The contract under test: disabled tracing is a shared no-op, enabled
tracing builds a parent/child forest, detached spans round-trip through
``to_dict``/``attach`` (the worker transport), and close events reach
the ``on_close`` sink exactly once whether a span closed in-process or
was replayed at attach time.
"""

import json
import os

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    TRACE_ENV,
    TRACE_FORMAT,
    Span,
    Tracer,
    configure_tracing,
    get_tracer,
    render_trace,
    write_trace,
)


@pytest.fixture(autouse=True)
def _restore_tracing():
    yield
    configure_tracing(False)


class TestDisabledTracer:
    def test_span_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN
        assert tracer.detached("anything") is NULL_SPAN

    def test_null_span_is_a_silent_context_manager(self):
        with NULL_SPAN as span:
            assert span.set(key="value") is NULL_SPAN
        assert not NULL_SPAN.enabled

    def test_null_span_does_not_swallow_exceptions(self):
        with pytest.raises(ValueError):
            with Tracer(enabled=False).span("s"):
                raise ValueError("boom")

    def test_attach_is_a_no_op(self):
        tracer = Tracer(enabled=False)
        assert tracer.attach({"name": "x"}) is None
        assert tracer.roots == []


class TestSpanTree:
    def test_nesting_builds_parent_child_forest(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                pass
        with tracer.span("second-root"):
            pass
        assert [s.name for s in tracer.roots] == ["outer", "second-root"]
        assert [c.name for c in tracer.roots[0].children] == [
            "inner-1",
            "inner-2",
        ]

    def test_attributes_from_kwargs_and_set(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", project="alpha") as span:
            span.set(versions=7)
        assert span.attributes == {"project": "alpha", "versions": 7}

    def test_exception_marks_span_error_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.roots[0].status == "error"

    def test_timing_and_self_seconds(self):
        span = Span("parent", seconds=1.0)
        span.children = [Span("a", seconds=0.3), Span("b", seconds=0.4)]
        assert span.self_seconds == pytest.approx(0.3)
        # children summing past the parent clamp to zero, never negative
        span.children.append(Span("c", seconds=9.0))
        assert span.self_seconds == 0.0

    def test_detached_span_stays_out_of_the_forest(self):
        tracer = Tracer(enabled=True)
        with tracer.span("driver"):
            with tracer.detached("worker-unit") as unit:
                with tracer.span("step"):
                    pass
        assert [s.name for s in tracer.roots] == ["driver"]
        assert [c.name for c in unit.children] == ["step"]

    def test_clear_empties_the_forest(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.roots == []


class TestSerialisation:
    def test_to_dict_from_dict_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.detached("project", project="p1") as span:
            with tracer.span("mine", versions=3):
                pass
            with tracer.span("analyze"):
                pass
        data = span.to_dict()
        # the transport payload is picklable plain data: json survives
        restored = Span.from_dict(json.loads(json.dumps(data)))
        assert restored.name == "project"
        assert restored.attributes == {"project": "p1"}
        assert [c.name for c in restored.children] == ["mine", "analyze"]
        assert restored.children[0].attributes == {"versions": 3}
        assert restored.to_dict() == data

    def test_walk_yields_children_before_parents(self):
        span = Span.from_dict(
            {
                "name": "root",
                "children": [
                    {"name": "a", "children": [{"name": "a1"}]},
                    {"name": "b"},
                ],
            }
        )
        assert [s.name for s in span.walk()] == ["a1", "a", "b", "root"]

    def test_attach_places_tree_under_the_open_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("dispatch"):
            attached = tracer.attach({"name": "project", "children": []})
        assert attached is not None
        assert tracer.roots[0].children[0].name == "project"

    def test_attach_with_no_open_span_adds_a_root(self):
        tracer = Tracer(enabled=True)
        tracer.attach({"name": "orphan"})
        assert [s.name for s in tracer.roots] == ["orphan"]

    def test_attach_none_is_a_no_op(self):
        tracer = Tracer(enabled=True)
        assert tracer.attach(None) is None
        assert tracer.roots == []


class TestCloseEvents:
    def test_in_process_spans_emit_live_on_close(self):
        tracer = Tracer(enabled=True)
        closed = []
        tracer.on_close = lambda span: closed.append(span.name)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert closed == ["inner", "outer"]

    def test_attach_emit_replays_worker_closes_once(self):
        tracer = Tracer(enabled=True)
        closed = []
        tracer.on_close = lambda span: closed.append(span.name)
        data = {
            "name": "project",
            "children": [{"name": "mine"}, {"name": "analyze"}],
        }
        tracer.attach(data, emit=True)
        assert closed == ["mine", "analyze", "project"]

    def test_attach_without_emit_replays_nothing(self):
        # the serial path: the spans already emitted at close time
        tracer = Tracer(enabled=True)
        closed = []
        tracer.on_close = lambda span: closed.append(span.name)
        tracer.attach({"name": "project"}, emit=False)
        assert closed == []


class TestGlobalTracer:
    def test_configure_tracing_exports_and_clears_the_env(self):
        configure_tracing(True)
        assert os.environ.get(TRACE_ENV) == "1"
        assert get_tracer().enabled
        configure_tracing(False)
        assert TRACE_ENV not in os.environ
        assert not get_tracer().enabled

    def test_fresh_process_would_honour_the_env(self, monkeypatch):
        # get_tracer reads the env on first use — the worker-process path
        import repro.obs.trace as trace_module

        monkeypatch.setattr(trace_module, "_active", None)
        monkeypatch.setenv(TRACE_ENV, "1")
        assert get_tracer().enabled
        monkeypatch.setattr(trace_module, "_active", None)
        monkeypatch.setenv(TRACE_ENV, "0")
        assert not get_tracer().enabled


class TestTraceFileAndRendering:
    def _tracer_with_run(self):
        tracer = Tracer(enabled=True)
        with tracer.span("study", projects=2):
            with tracer.span("mine_analyze"):
                with tracer.span("project", project="p1"):
                    pass
        return tracer

    def test_write_trace_payload(self, tmp_path):
        tracer = self._tracer_with_run()
        path = write_trace(tracer, tmp_path / "nested" / "trace.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == TRACE_FORMAT
        assert payload["spans"][0]["name"] == "study"

    def test_render_trace_indents_and_shows_attributes(self):
        text = render_trace(self._tracer_with_run().to_payload())
        lines = text.splitlines()
        assert "span" in lines[0] and "total" in lines[0]
        assert lines[1].startswith("study")
        assert lines[2].startswith("  mine_analyze")
        assert "project=p1" in lines[3]

    def test_render_trace_depth_limit(self):
        payload = self._tracer_with_run().to_payload()
        shallow = render_trace(payload, max_depth=0)
        assert "study" in shallow and "mine_analyze" not in shallow

    def test_render_trace_flags_error_spans(self):
        payload = {"spans": [{"name": "bad", "status": "error"}]}
        assert "[error]" in render_trace(payload)
