"""Unit tests for static query validation against a schema."""

import pytest

from repro.querydep import (
    EmbeddedQuery,
    validate_queries,
    validate_query,
)
from repro.sqlparser import parse_schema

SCHEMA = parse_schema(
    """
    CREATE TABLE users (id INT, name VARCHAR(40), email TEXT);
    CREATE TABLE posts (pid INT, body TEXT, author INT);
    """
).schema


def q(text, line=1):
    return EmbeddedQuery(file="app.py", line=line, text=text)


class TestValidateQuery:
    def test_valid_query_has_no_issues(self):
        assert validate_query(q("SELECT id, name FROM users"), SCHEMA) == []

    def test_unknown_table(self):
        issues = validate_query(q("SELECT x FROM ghosts"), SCHEMA)
        assert [i.kind for i in issues] == ["unknown_table"]
        assert issues[0].element == "ghosts"

    def test_unknown_qualified_column(self):
        issues = validate_query(
            q("SELECT u.age FROM users u"), SCHEMA
        )
        assert [i.element for i in issues] == ["users.age"]

    def test_known_qualified_column_ok(self):
        assert validate_query(q("SELECT u.email FROM users u"), SCHEMA) == []

    def test_bare_column_resolvable_in_any_table_ok(self):
        issues = validate_query(
            q("SELECT body FROM users u JOIN posts p ON u.id = p.author"),
            SCHEMA,
        )
        assert issues == []

    def test_bare_column_resolvable_nowhere(self):
        issues = validate_query(
            q("SELECT nothing_here FROM users u "
              "JOIN posts p ON u.id = p.author"),
            SCHEMA,
        )
        assert [i.element for i in issues] == ["nothing_here"]

    def test_unknown_table_does_not_cascade_column_noise(self):
        issues = validate_query(q("SELECT g.x FROM ghosts g"), SCHEMA)
        kinds = [i.kind for i in issues]
        assert kinds == ["unknown_table"]

    def test_issue_str(self):
        issue = validate_query(q("SELECT x FROM ghosts", line=7), SCHEMA)[0]
        assert "app.py:7" in str(issue)


class TestValidateQueries:
    def test_report_aggregates(self):
        report = validate_queries(
            [
                q("SELECT id FROM users"),
                q("SELECT x FROM ghosts", line=2),
                q("SELECT u.age FROM users u", line=3),
            ],
            SCHEMA,
        )
        assert not report.ok
        assert len(report) == 2
        assert {i.query.line for i in report} == {2, 3}

    def test_clean_workload(self):
        report = validate_queries(
            [q("SELECT id FROM users"), q("SELECT body FROM posts")],
            SCHEMA,
        )
        assert report.ok
        assert len(report) == 0

    def test_validation_catches_schema_drift(self):
        """The validate/impact duo agree: queries valid before a change
        and flagged BREAKS by impact become invalid after it."""
        from repro.diff import diff_schemas
        from repro.querydep import Impact, analyze_impact

        new_schema = parse_schema(
            """
            CREATE TABLE users (id INT, name VARCHAR(40));
            CREATE TABLE posts (pid INT, body TEXT, author INT);
            """
        ).schema
        workload = [q("SELECT u.email FROM users u")]
        assert validate_queries(workload, SCHEMA).ok

        delta = diff_schemas(SCHEMA, new_schema)
        impact = analyze_impact(workload, delta)
        assert impact.impacts[0].impact is Impact.BREAKS
        assert not validate_queries(workload, new_schema).ok
