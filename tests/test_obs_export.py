"""Unit tests for the telemetry exporters (`repro.obs.export`).

Each exporter is pinned against its consumer's grammar: the Chrome
document must be valid trace-event JSON whose ``span_id``/``parent_id``
args reconstruct the exact span tree, the Prometheus page must pass the
exposition-grammar validator line by line, and the folded stacks must
aggregate self time by span path.
"""

import json

import pytest

from repro.obs.export import (
    DRIVER_LANE,
    TRACE_PID,
    chrome_trace,
    folded_stacks,
    prometheus_text,
    validate_prometheus_text,
)
from repro.obs.trace import TRACE_FORMAT


def _span(name, start, seconds, *, status="ok", attributes=None,
          children=()):
    return {
        "name": name,
        "start": start,
        "seconds": seconds,
        "status": status,
        "attributes": attributes or {},
        "children": list(children),
    }


def _payload():
    """A two-worker study trace: driver spans plus reattached trees."""
    return {
        "format": TRACE_FORMAT,
        "spans": [
            _span("study", 100.0, 2.0, attributes={"projects": 2},
                  children=[
                      _span("mine_analyze", 100.1, 1.8, children=[
                          _span("project", 100.2, 0.5,
                                attributes={"project": "a", "worker": 111},
                                children=[
                                    _span("mine", 100.2, 0.4),
                                    _span("analyze", 100.6, 0.1),
                                ]),
                          _span("project", 100.3, 0.6, status="error",
                                attributes={"project": "b", "worker": 222}),
                      ]),
                  ]),
        ],
    }


class TestChromeTrace:
    @pytest.fixture()
    def doc(self):
        return chrome_trace(_payload())

    def test_document_shape(self, doc):
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        # the whole document is plain JSON
        assert json.loads(json.dumps(doc)) == doc

    def test_one_complete_event_per_span(self, doc):
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 6
        assert [e["name"] for e in complete] == [
            "study", "mine_analyze", "project", "mine", "analyze",
            "project",
        ]

    def test_timestamps_and_durations_in_microseconds(self, doc):
        study = next(e for e in doc["traceEvents"] if e["name"] == "study")
        assert study["ts"] == round(100.0 * 1e6)
        assert study["dur"] == round(2.0 * 1e6)
        assert study["pid"] == TRACE_PID

    def test_span_tree_round_trips_through_args(self, doc):
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_id = {e["args"]["span_id"]: e for e in complete}
        children: dict = {}
        roots = []
        for event in complete:
            parent = event["args"]["parent_id"]
            if parent is None:
                roots.append(event)
            else:
                children.setdefault(parent, []).append(event)

        def rebuild(event):
            return {
                "name": event["name"],
                "status": event["args"]["status"],
                "attributes": event["args"]["attributes"],
                "children": [
                    rebuild(child)
                    for child in children.get(event["args"]["span_id"], [])
                ],
            }

        def strip(span):
            return {
                "name": span["name"],
                "status": span["status"],
                "attributes": span["attributes"],
                "children": [strip(c) for c in span["children"]],
            }

        assert [rebuild(r) for r in roots] == [
            strip(s) for s in _payload()["spans"]
        ]
        assert by_id[1]["name"] == "study"

    def test_worker_spans_get_their_own_lanes(self, doc):
        events = {
            (e["name"], e["args"]["attributes"].get("project")): e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "X"
        }
        assert events[("study", None)] == DRIVER_LANE
        assert events[("mine_analyze", None)] == DRIVER_LANE
        lane_a = events[("project", "a")]
        lane_b = events[("project", "b")]
        assert lane_a != DRIVER_LANE
        assert lane_b not in (DRIVER_LANE, lane_a)
        # children without a worker attribute inherit the parent's lane
        assert events[("mine", None)] == lane_a
        assert events[("analyze", None)] == lane_a

    def test_lane_crossings_emit_flow_pairs(self, doc):
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(finishes) == 2  # one per worker span
        for start, finish in zip(starts, finishes):
            assert start["id"] == finish["id"]
            assert start["ts"] == finish["ts"]
            assert start["tid"] == DRIVER_LANE
            assert finish["tid"] != DRIVER_LANE
            assert finish["bp"] == "e"

    def test_thread_name_metadata(self, doc):
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[DRIVER_LANE] == "driver"
        assert "worker 111" in names.values()
        assert "worker 222" in names.values()
        process = next(
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        )
        assert process["args"]["name"] == "repro-study"

    def test_error_status_is_preserved(self, doc):
        errored = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["args"]["status"] == "error"
        ]
        assert len(errored) == 1
        assert errored[0]["args"]["attributes"]["project"] == "b"

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro-trace-v1"):
            chrome_trace({"format": "speedscope", "spans": []})

    def test_untagged_payload_accepted(self):
        doc = chrome_trace({"spans": [_span("solo", 1.0, 0.1)]})
        assert sum(1 for e in doc["traceEvents"] if e["ph"] == "X") == 1


METRICS = {
    "counters": {"projects.mined": 12, "versions.parsed": 340},
    "gauges": {"cache.entries": 7.5},
    "histograms": {
        "diff.seconds": {
            "bounds": [0.001, 0.01, 0.1],
            "counts": [5, 3, 1],
            "sum": 0.25,
            "count": 10,
            "mean": 0.025,
        }
    },
}


class TestPrometheusText:
    def test_page_passes_the_validator(self):
        assert validate_prometheus_text(prometheus_text(METRICS)) == []

    def test_counters_gain_the_total_suffix(self):
        page = prometheus_text(METRICS)
        assert "# TYPE repro_projects_mined_total counter" in page
        assert "repro_projects_mined_total 12" in page

    def test_gauges_render(self):
        page = prometheus_text(METRICS)
        assert "# TYPE repro_cache_entries gauge" in page
        assert "repro_cache_entries 7.5" in page

    def test_histogram_buckets_are_cumulative(self):
        lines = prometheus_text(METRICS).splitlines()
        buckets = [l for l in lines if "_bucket" in l]
        assert buckets == [
            'repro_diff_seconds_bucket{le="0.001"} 5',
            'repro_diff_seconds_bucket{le="0.01"} 8',
            'repro_diff_seconds_bucket{le="0.1"} 9',
            'repro_diff_seconds_bucket{le="+Inf"} 10',
        ]
        assert "repro_diff_seconds_sum 0.25" in lines
        assert "repro_diff_seconds_count 10" in lines

    def test_empty_snapshot_renders_empty_page(self):
        assert prometheus_text({}) == ""
        assert validate_prometheus_text("") == []

    def test_validator_flags_untyped_samples(self):
        problems = validate_prometheus_text("mystery_metric 1\n")
        assert problems == ["line 1: sample 'mystery_metric' has no "
                            "preceding TYPE"]

    def test_validator_flags_malformed_lines(self):
        page = (
            "# TYPE repro_x counter\n"
            "repro x 1\n"          # space in the metric name
            "repro_x notafloat\n"  # bad value
        )
        problems = validate_prometheus_text(page)
        assert any("malformed sample line" in p for p in problems)
        assert any("not a float" in p for p in problems)

    def test_validator_flags_bad_histograms(self):
        page = (
            "# TYPE repro_h histogram\n"
            "repro_h 3\n"                      # bare histogram sample
            "repro_h_bucket 1\n"               # bucket without le
            'repro_h_bucket{le="wide"} 2\n'    # le not a float
        )
        problems = validate_prometheus_text(page)
        assert any("bare" in p for p in problems)
        assert any("without an le label" in p for p in problems)
        assert any("le value 'wide'" in p for p in problems)

    def test_validator_flags_broken_comments(self):
        page = (
            "# HELP repro_x\n"       # no help text
            "# TYPE repro_x sandwich\n"
            "# TYPE repro_y counter\n"
            "# TYPE repro_y counter\n"
        )
        problems = validate_prometheus_text(page)
        assert any("malformed HELP" in p for p in problems)
        assert any("malformed TYPE" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)


class TestFoldedStacks:
    def test_paths_carry_self_time_in_microseconds(self):
        lines = folded_stacks(_payload()).splitlines()
        folded = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in lines
        )
        assert folded["study"] == round(0.2 * 1e6)
        assert folded["study;mine_analyze"] == round(0.7 * 1e6)
        # project "a" has zero self time (children cover it) so only
        # project "b"'s 0.6 s lands on the shared path
        assert folded["study;mine_analyze;project"] == round(0.6 * 1e6)
        assert folded["study;mine_analyze;project;mine"] == round(0.4 * 1e6)

    def test_identical_paths_aggregate(self):
        payload = {"spans": [
            _span("stage", 1.0, 0.25),
            _span("stage", 2.0, 0.5),
        ]}
        assert folded_stacks(payload) == "stage 750000"

    def test_zero_self_time_paths_omitted(self):
        # the root's time is fully covered by its child, so only the
        # leaf path appears
        payload = {"spans": [
            _span("root", 1.0, 0.1,
                  children=[_span("leaf", 1.0, 0.1)]),
        ]}
        assert folded_stacks(payload) == "root;leaf 100000"

    def test_empty_payload(self):
        assert folded_stacks({"spans": []}) == ""
