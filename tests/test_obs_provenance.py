"""Provenance breakdowns and ``pipeline explain``: the three canonical
recompute attributions (project override → upstream digest, stage
code-version bump → code_version, identity/params edit → params
digest), plus warm/cold classification and the diff labels."""

import pytest

from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.obs.provenance import (
    PROVENANCE_FORMAT,
    components_of,
    diff_components,
    explain_target,
    match_score,
    render_explanation,
)
from repro.pipeline import (
    MAP_STAGE_NAMES,
    REDUCE_STAGE_NAMES,
    MemoryStore,
    Pipeline,
)

SCALE = 16

A = "a" * 64
B = "b" * 64


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    reset_recorder()
    reset_metrics()
    yield
    reset_recorder()
    reset_metrics()


class TestComponents:
    def test_flattening_names_every_member(self):
        prov = {
            "code_version": "3",
            "params": {"profile": A, "spec": B},
            "upstream": {"generate": A},
        }
        assert components_of(prov) == {
            "code_version": "3",
            "params.profile": A,
            "params.spec": B,
            "upstream.generate": A,
        }

    def test_match_score_counts_shared_components(self):
        base = {"code_version": "3", "params": {"x": "1"}, "upstream": {}}
        same = {"code_version": "3", "params": {"x": "1"}, "upstream": {}}
        off = {"code_version": "4", "params": {"x": "1"}, "upstream": {}}
        assert match_score(base, same) == 2
        assert match_score(base, off) == 1

    def test_code_version_label(self):
        causes = diff_components(
            {"code_version": "3"}, {"code_version": "2"}
        )
        assert [c["label"] for c in causes] == ["code_version bumped 2→3"]

    def test_upstream_label_shortens_digests(self):
        causes = diff_components(
            {"code_version": "1", "upstream": {"generate": B}},
            {"code_version": "1", "upstream": {"generate": A}},
        )
        assert causes == [{
            "component": "upstream.generate",
            "stored": A,
            "current": B,
            "label": (
                f"upstream generate digest changed ({A[:12]}→{B[:12]})"
            ),
        }]

    def test_params_digest_vs_plain_value_labels(self):
        causes = diff_components(
            {"code_version": "1", "params": {"profile": B, "fmt": "html"}},
            {"code_version": "1",
             "params": {"profile": A, "fmt": "markdown"}},
        )
        labels = {c["component"]: c["label"] for c in causes}
        assert "digest changed" in labels["params.profile"]
        assert labels["params.fmt"] == "params.fmt changed (markdown→html)"

    def test_added_and_removed_components(self):
        causes = diff_components(
            {"code_version": "1", "params": {"new": "x"}},
            {"code_version": "1", "params": {"old": "y"}},
        )
        labels = sorted(c["label"] for c in causes)
        assert labels == [
            "params.new added (x)",
            "params.old removed (was y)",
        ]

    def test_identical_breakdowns_diff_empty(self):
        prov = {"code_version": "1", "params": {}, "upstream": {"g": A}}
        assert diff_components(prov, dict(prov)) == []


class TestExplainTarget:
    def test_warm_when_key_is_stored(self):
        store = MemoryStore()
        store.put(A, {"x": 1}, meta={"stage": "aggregate"})
        record = explain_target(
            store, "aggregate", A, {"code_version": "1"}
        )
        assert record["state"] == "warm"
        assert record["causes"] == []
        assert "warm" in render_explanation(record)

    def test_cold_when_no_prior_generation(self):
        record = explain_target(
            MemoryStore(), "aggregate", A, {"code_version": "1"}
        )
        assert record["state"] == "cold"
        assert "no prior artifact" in render_explanation(record)

    def test_stale_diffs_the_best_matching_candidate(self):
        store = MemoryStore()
        stored = {
            "code_version": "2", "params": {}, "upstream": {"mine": A},
        }
        store.put(
            B, {}, meta={"stage": "aggregate", "provenance": stored}
        )
        current = {
            "code_version": "3", "params": {}, "upstream": {"mine": A},
        }
        record = explain_target(store, "aggregate", A, current)
        assert record["state"] == "stale"
        assert record["matched_key"] == B
        assert [c["component"] for c in record["causes"]] == [
            "code_version"
        ]
        text = render_explanation(record)
        assert "stale" in text and "code_version bumped 2→3" in text

    def test_other_stages_and_projects_are_not_candidates(self):
        store = MemoryStore()
        prov = {"code_version": "1", "params": {}, "upstream": {}}
        store.put(B, {}, meta={"stage": "figures", "provenance": prov})
        store.put(
            "c" * 64, {},
            meta={"stage": "mine", "project": "other", "provenance": prov},
        )
        record = explain_target(
            store, "mine", A, prov, project="mine-target"
        )
        assert record["state"] == "cold"

    def test_same_breakdown_different_key_names_the_format(self):
        store = MemoryStore()
        prov = {"code_version": "1", "params": {}, "upstream": {}}
        store.put(B, {}, meta={"stage": "aggregate", "provenance": prov})
        record = explain_target(store, "aggregate", A, dict(prov))
        assert record["state"] == "stale"
        assert record["causes"][0]["label"] == (
            "fingerprint format or recipe changed"
        )


class TestPipelineExplain:
    """The acceptance scenarios, against one warm store."""

    @pytest.fixture(scope="class")
    def warm_store(self):
        store = MemoryStore()
        pipe = Pipeline(scale=SCALE, store=store)
        pipe.study()
        pipe.report()
        return store

    def test_every_target_is_warm_after_a_run(self, warm_store):
        pipe = Pipeline(scale=SCALE, store=warm_store)
        for stage in MAP_STAGE_NAMES + REDUCE_STAGE_NAMES:
            records = pipe.explain(stage)
            assert all(r["state"] == "warm" for r in records), stage

    def test_cold_store_yields_cold_targets(self):
        pipe = Pipeline(scale=SCALE, store=MemoryStore())
        records = pipe.explain("mine")
        assert records and all(r["state"] == "cold" for r in records)

    def test_project_override_blames_the_upstream_digest(self, warm_store):
        # scenario 1: a one-project override re-keys its generate
        # shard; the mine shard's recompute is attributed to exactly
        # the upstream generate digest, not code or params
        base = Pipeline(scale=SCALE, store=warm_store)
        target = base.shards()[0].project
        pipe = Pipeline(
            scale=SCALE, store=warm_store,
            project_overrides={target: 999_999},
        )
        (record,) = pipe.explain("mine", project=target)
        assert record["state"] == "stale"
        components = [c["component"] for c in record["causes"]]
        assert components == ["upstream.generate"]
        assert "upstream generate digest changed" in (
            record["causes"][0]["label"]
        )
        # every other project's mine shard stays warm
        others = [
            r for r in pipe.explain("mine") if r["project"] != target
        ]
        assert others and all(r["state"] == "warm" for r in others)

    def test_code_version_bump_blames_code_version(self, warm_store):
        # scenario 2: bumping the mine stage version is attributed to
        # code_version on every mine shard; generate stays warm
        pipe = Pipeline(
            scale=SCALE, store=warm_store, code_versions={"mine": "99"}
        )
        records = pipe.explain("mine")
        assert records and all(r["state"] == "stale" for r in records)
        for record in records:
            components = [c["component"] for c in record["causes"]]
            assert components == ["code_version"]
            assert "code_version bumped" in record["causes"][0]["label"]
        assert all(
            r["state"] == "warm" for r in pipe.explain("generate")
        )

    def test_identity_edit_blames_the_params_digest(self, warm_store):
        # scenario 3: the override seen from the generate shard itself
        # is a params change — its identity (spec/profile digests) is
        # the stage's declared params, so the cause is params.*
        base = Pipeline(scale=SCALE, store=warm_store)
        target = base.shards()[0].project
        pipe = Pipeline(
            scale=SCALE, store=warm_store,
            project_overrides={target: 999_999},
        )
        (record,) = pipe.explain("generate", project=target)
        assert record["state"] == "stale"
        components = [c["component"] for c in record["causes"]]
        assert components and all(
            c.startswith("params.") for c in components
        )
        assert any(
            "digest changed" in c["label"] for c in record["causes"]
        )

    def test_report_format_edit_blames_its_param(self, warm_store):
        pipe = Pipeline(
            scale=SCALE, store=warm_store, report_format="html"
        )
        (record,) = pipe.explain("report")
        assert record["state"] == "stale"
        labels = [c["label"] for c in record["causes"]]
        assert any(
            "params.report_format" in label and "markdown→html" in label
            for label in labels
        )

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            Pipeline(store=MemoryStore()).explain("figments")

    def test_unknown_project_raises(self):
        pipe = Pipeline(scale=SCALE, store=MemoryStore())
        with pytest.raises(KeyError):
            pipe.explain("mine", project="no/such-project")

    def test_project_on_a_reduce_stage_raises(self):
        pipe = Pipeline(scale=SCALE, store=MemoryStore())
        with pytest.raises(ValueError, match="per-project"):
            pipe.explain("aggregate", project="x")

    def test_stored_breakdown_carries_the_format_tag(self, warm_store):
        pipe = Pipeline(scale=SCALE, store=warm_store)
        key = pipe.fingerprint("aggregate")
        prov = warm_store.meta_of(key)["provenance"]
        assert prov["format"] == PROVENANCE_FORMAT
        assert prov["kind"] == "reduce"
        assert set(prov["upstream"]) == {"analyze"}
        shard = pipe.shards()[0]
        shard_prov = warm_store.meta_of(shard.keys["mine"])["provenance"]
        assert shard_prov["kind"] == "map"
        assert shard_prov["project"] == shard.project
        assert set(shard_prov["upstream"]) == {"generate"}
