--
-- PostgreSQL database dump
--

SET statement_timeout = 0;
SET lock_timeout = 0;
SET client_encoding = 'UTF8';
SET standard_conforming_strings = on;
SET check_function_bodies = false;
SET row_security = off;

--
-- Name: notes; Type: TABLE; Schema: public; Owner: app
--

CREATE TABLE public.notes (
    id integer NOT NULL,
    uid bigint,
    created_at timestamp without time zone,
    closed_at timestamp with time zone,
    status character varying(32) DEFAULT 'open'::character varying NOT NULL,
    location point,
    body text,
    tags text[]
);

ALTER TABLE public.notes OWNER TO app;

--
-- Name: notes_id_seq; Type: SEQUENCE; Schema: public; Owner: app
--

CREATE SEQUENCE public.notes_id_seq
    START WITH 1
    INCREMENT BY 1
    NO MINVALUE
    NO MAXVALUE
    CACHE 1;

ALTER SEQUENCE public.notes_id_seq OWNED BY public.notes.id;

--
-- Name: comments; Type: TABLE; Schema: public; Owner: app
--

CREATE TABLE public.comments (
    id bigserial,
    note_id integer NOT NULL,
    author_id bigint,
    visible boolean DEFAULT true NOT NULL,
    body character varying(1024),
    created_at timestamp without time zone DEFAULT now()
);

--
-- Name: changesets; Type: TABLE; Schema: public; Owner: app
--

CREATE TABLE public.changesets (
    id bigint NOT NULL,
    user_id bigint,
    created_at timestamp without time zone,
    num_comments integer DEFAULT 0,
    metadata jsonb
);

--
-- Data for Name: notes; Type: TABLE DATA; Schema: public; Owner: app
--

COPY public.notes (id, uid, created_at, status, body) FROM stdin;
1	100	2015-06-01 10:00:00	open	first note's body
2	101	2015-06-02 11:30:00	closed	don't parse this "quote"
\.

--
-- Name: notes notes_pkey; Type: CONSTRAINT; Schema: public; Owner: app
--

ALTER TABLE ONLY public.notes
    ADD CONSTRAINT notes_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.comments
    ADD CONSTRAINT comments_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.changesets
    ADD CONSTRAINT changesets_pkey PRIMARY KEY (id);

--
-- Name: comments comments_note_id_fkey; Type: FK CONSTRAINT
--

ALTER TABLE ONLY public.comments
    ADD CONSTRAINT comments_note_id_fkey FOREIGN KEY (note_id)
    REFERENCES public.notes(id);

--
-- Name: idx_notes_created; Type: INDEX
--

CREATE INDEX idx_notes_created ON public.notes USING btree (created_at);

--
-- PostgreSQL database dump complete
--
