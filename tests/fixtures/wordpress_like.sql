-- MySQL dump 10.13  Distrib 5.7.33, for Linux (x86_64)
--
-- Host: localhost    Database: wp_demo
-- ------------------------------------------------------
-- Server version	5.7.33

/*!40101 SET @OLD_CHARACTER_SET_CLIENT=@@CHARACTER_SET_CLIENT */;
/*!40101 SET NAMES utf8 */;
/*!40103 SET @OLD_TIME_ZONE=@@TIME_ZONE */;
/*!40103 SET TIME_ZONE='+00:00' */;

--
-- Table structure for table `wp_users`
--

DROP TABLE IF EXISTS `wp_users`;
CREATE TABLE `wp_users` (
  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `user_login` varchar(60) NOT NULL DEFAULT '',
  `user_pass` varchar(255) NOT NULL DEFAULT '',
  `user_nicename` varchar(50) NOT NULL DEFAULT '',
  `user_email` varchar(100) NOT NULL DEFAULT '',
  `user_url` varchar(100) NOT NULL DEFAULT '',
  `user_registered` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `user_activation_key` varchar(255) NOT NULL DEFAULT '',
  `user_status` int(11) NOT NULL DEFAULT '0',
  `display_name` varchar(250) NOT NULL DEFAULT '',
  PRIMARY KEY (`ID`),
  KEY `user_login_key` (`user_login`),
  KEY `user_nicename` (`user_nicename`),
  KEY `user_email` (`user_email`)
) ENGINE=InnoDB AUTO_INCREMENT=2 DEFAULT CHARSET=utf8mb4;

--
-- Table structure for table `wp_posts`
--

DROP TABLE IF EXISTS `wp_posts`;
CREATE TABLE `wp_posts` (
  `ID` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `post_author` bigint(20) unsigned NOT NULL DEFAULT '0',
  `post_date` datetime NOT NULL DEFAULT '0000-00-00 00:00:00',
  `post_content` longtext NOT NULL,
  `post_title` text NOT NULL,
  `post_excerpt` text NOT NULL,
  `post_status` varchar(20) NOT NULL DEFAULT 'publish',
  `comment_status` varchar(20) NOT NULL DEFAULT 'open',
  `post_name` varchar(200) NOT NULL DEFAULT '',
  `post_parent` bigint(20) unsigned NOT NULL DEFAULT '0',
  `menu_order` int(11) NOT NULL DEFAULT '0',
  `post_type` varchar(20) NOT NULL DEFAULT 'post',
  `comment_count` bigint(20) NOT NULL DEFAULT '0',
  PRIMARY KEY (`ID`),
  KEY `post_name` (`post_name`(191)),
  KEY `type_status_date` (`post_type`,`post_status`,`post_date`,`ID`),
  KEY `post_parent` (`post_parent`),
  KEY `post_author` (`post_author`)
) ENGINE=InnoDB AUTO_INCREMENT=10 DEFAULT CHARSET=utf8mb4;

--
-- Dumping data for table `wp_posts`
--

LOCK TABLES `wp_posts` WRITE;
/*!40000 ALTER TABLE `wp_posts` DISABLE KEYS */;
INSERT INTO `wp_posts` VALUES (1,1,'2021-01-01 00:00:00','Welcome, it''s a post!','Hello world!','','publish','open','hello-world',0,0,'post',1);
/*!40000 ALTER TABLE `wp_posts` ENABLE KEYS */;
UNLOCK TABLES;

--
-- Table structure for table `wp_options`
--

DROP TABLE IF EXISTS `wp_options`;
CREATE TABLE `wp_options` (
  `option_id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `option_name` varchar(191) NOT NULL DEFAULT '',
  `option_value` longtext NOT NULL,
  `autoload` varchar(20) NOT NULL DEFAULT 'yes',
  PRIMARY KEY (`option_id`),
  UNIQUE KEY `option_name` (`option_name`),
  KEY `autoload` (`autoload`)
) ENGINE=InnoDB AUTO_INCREMENT=100 DEFAULT CHARSET=utf8mb4;

/*!40103 SET TIME_ZONE=@OLD_TIME_ZONE */;
/*!40101 SET CHARACTER_SET_CLIENT=@OLD_CHARACTER_SET_CLIENT */;

-- Dump completed on 2021-06-01 12:00:00
