"""Serving is observation only: a --serve run changes no artifact.

The contract the whole observability layer hangs on: a study run with
the HTTP server attached (and a live SSE-style subscriber draining the
bus) produces a byte-identical measures CSV, an equivalent event log
(same records modulo wall-clock fields), the same artifact-store keys,
and the same manifest modulo the new ``server`` block — serial and
with ``--jobs 4``.
"""

import json

import pytest

from repro.cli import main
from repro.obs.bus import get_bus, reset_bus
from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.pipeline.store import configure_store

SEED_ARGS = ["--seed", "77", "--scale", "32"]

#: Wall-clock / scheduling fields stripped before event comparison.
VOLATILE_EVENT_FIELDS = (
    "ts", "seconds", "eta_seconds", "slowest", "peak_rss_bytes",
    "cpu_seconds",
)


@pytest.fixture(autouse=True)
def _isolated_global_state(monkeypatch):
    # deterministic heartbeat count: emit on every completion
    monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0")
    reset_bus()
    reset_recorder()
    reset_metrics()
    yield
    configure_store(None)
    reset_bus()
    reset_recorder()
    reset_metrics()


def _run(tmp_path, tag, *, jobs, serve):
    out = tmp_path / tag
    out.mkdir()
    argv = [
        "study", "--figure", "headline", *SEED_ARGS,
        "--jobs", str(jobs),
        "--store-dir", str(out / "store"),
        "--csv", str(out / "measures.csv"),
        "--log-json", str(out / "events.jsonl"),
        "--manifest", str(out / "manifest.json"),
    ]
    subscription = None
    if serve:
        argv += ["--serve", "0"]
        # a live consumer on the bus makes the gated publishes
        # (artifact probes, metrics snapshots) actually fire — the
        # worst case for log/artifact identity
        subscription = get_bus().subscribe(capacity=100_000)
    assert main(argv) == 0
    drained = subscription.drain() if subscription else []
    if subscription:
        subscription.close()
    return out, drained


def _normalized_events(path):
    records = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        for field in VOLATILE_EVENT_FIELDS:
            record.pop(field, None)
        attributes = record.get("attributes")
        if attributes:
            attributes.pop("worker", None)  # pool pids vary per run
        records.append(record)
    return records


def _normalized_manifest(path):
    manifest = json.loads(path.read_text())
    for field in ("created_at", "timings", "outputs", "server"):
        manifest.pop(field, None)
    for block in ("cache", "store"):
        manifest[block].pop("dir", None)
        manifest[block].pop("env", None)
    metrics = manifest.get("metrics") or {}
    metrics.pop("histograms", None)  # carry observed seconds
    metrics.pop("gauges", None)
    counters = metrics.get("counters") or {}
    # the parse-cache hit/miss *split* depends on which worker mined
    # which project (fragment reuse is per-worker); the totals are
    # scheduling-invariant, so compare those
    for prefix in ("", "statement_", "unit_"):
        hits = counters.pop(f"parse_cache.{prefix}hits", 0)
        misses = counters.pop(f"parse_cache.{prefix}misses", 0)
        counters[f"parse_cache.{prefix}lookups"] = hits + misses
    return manifest


def _store_keys(out):
    return sorted(
        p.name for p in (out / "store").glob("objects/*/*")
    )


def _compare(tmp_path, *, jobs, ordered):
    unserved, _ = _run(tmp_path, f"unserved-{jobs}", jobs=jobs,
                       serve=False)
    reset_bus()
    reset_recorder()
    reset_metrics()
    configure_store(None)
    served, drained = _run(tmp_path, f"served-{jobs}", jobs=jobs,
                           serve=True)

    # the subscriber saw the run, including the bus-only kinds
    kinds = {envelope["kind"] for envelope in drained}
    assert "progress" in kinds
    assert "artifact" in kinds
    assert "metrics" in kinds
    assert "run" in kinds

    # results: byte identity
    assert (
        (served / "measures.csv").read_bytes()
        == (unserved / "measures.csv").read_bytes()
    )
    # artifact store: same content-addressed keys
    assert _store_keys(served) == _store_keys(unserved)
    # event log: same records modulo wall-clock fields (order too, on
    # the serial path; parallel completion order is scheduling-defined)
    served_events = _normalized_events(served / "events.jsonl")
    unserved_events = _normalized_events(unserved / "events.jsonl")
    if not ordered:
        key = lambda r: json.dumps(r, sort_keys=True)  # noqa: E731
        served_events = sorted(served_events, key=key)
        unserved_events = sorted(unserved_events, key=key)
    assert served_events == unserved_events
    # bus-only kinds must never leak into the JSONL log
    assert not any(
        record.get("event") in ("artifact", "metrics")
        for record in served_events
    )
    # manifest: identical modulo the server block (and wall-clock)
    served_manifest = json.loads((served / "manifest.json").read_text())
    assert served_manifest["server"]["url"].startswith("http://127.0.0.1:")
    assert (
        _normalized_manifest(served / "manifest.json")
        == _normalized_manifest(unserved / "manifest.json")
    )


class TestServedRunIsByteIdentical:
    def test_serial(self, tmp_path):
        _compare(tmp_path, jobs=1, ordered=True)

    def test_jobs_4(self, tmp_path):
        _compare(tmp_path, jobs=4, ordered=False)
