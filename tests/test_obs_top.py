"""The obs top dashboard: SSE parsing, the state fold, rendering."""

import io

import pytest

from repro.obs.bus import get_bus, reset_bus
from repro.obs.top import (
    DashboardState,
    bus_envelopes,
    render_dashboard,
    run_top,
    sse_events,
)


@pytest.fixture(autouse=True)
def _fresh_bus():
    reset_bus()
    yield
    reset_bus()


def _env(kind, data, id=1):
    return {"id": id, "kind": kind, "ts": 0.0, "schema": 1, "data": data}


class TestSseEvents:
    def test_parses_frames_and_skips_keepalives(self):
        stream = [
            ": keepalive\n",
            "\n",
            "id: 1\n",
            "event: progress\n",
            'data: {"id": 1, "kind": "progress", "data": {}}\n',
            "\n",
            "id: 2\n",
            "event: span\n",
            'data: {"id": 2, "kind": "span", "data": {}}\n',
            "\n",
        ]
        envelopes = list(sse_events(stream))
        assert [e["id"] for e in envelopes] == [1, 2]

    def test_accepts_bytes_lines(self):
        stream = [b'data: {"id": 7, "kind": "run", "data": {}}\n', b"\n"]
        (envelope,) = sse_events(stream)
        assert envelope["id"] == 7

    def test_torn_frame_is_skipped_not_fatal(self):
        stream = [
            "data: {not json\n",
            "\n",
            'data: {"id": 3, "kind": "span", "data": {}}\n',
            "\n",
        ]
        assert [e["id"] for e in sse_events(stream)] == [3]


class TestDashboardState:
    def test_progress_envelopes_build_stage_rows(self):
        state = DashboardState()
        state.apply(_env("progress", {
            "stage": "mine", "done": 3, "total": 10,
            "percent": 30.0, "eta_seconds": 12.0,
        }))
        state.apply(_env("progress", {
            "stage": "mine", "done": 5, "total": 10,
            "percent": 50.0, "eta_seconds": 8.0,
        }, id=2))
        assert state.stages["mine"]["done"] == 5
        assert state.last_id == 2

    def test_metrics_envelopes_drive_cache_rates(self):
        state = DashboardState()
        state.apply(_env("metrics", {"counters": {
            "parse_cache.hits": 3, "parse_cache.misses": 1,
            "parse_cache.statement_hits": 9,
            "parse_cache.statement_misses": 1,
        }}))
        assert state.parse_cache_rate == 0.75
        assert state.statement_reuse_rate == 0.9

    def test_rates_are_none_without_data(self):
        state = DashboardState()
        assert state.parse_cache_rate is None
        assert state.statement_reuse_rate is None

    def test_artifact_warning_resource_span_run_folds(self):
        state = DashboardState()
        state.apply(_env("artifact", {"outcome": "hit"}))
        state.apply(_env("artifact", {"outcome": "recompute"}))
        state.apply(_env("artifact", {"outcome": "hit"}))
        state.apply(_env("warning", {"code": "empty-history"}))
        state.apply(_env("warning", {"code": "empty-history"}))
        state.apply(_env("resource", {
            "scope": "workers", "peak_rss_bytes": 64 * 2**20,
        }))
        state.apply(_env("span", {"name": "mine", "seconds": 0.5}))
        state.apply(_env("run", {"command": "study", "status": "ok"}))
        assert state.artifacts == {"hit": 2, "recompute": 1}
        assert state.warning_count == 2
        assert state.peak_rss_bytes == 64 * 2**20
        assert state.spans == 1
        assert state.run_status == "ok"


class TestRender:
    def test_render_shows_bars_rates_and_run_line(self):
        state = DashboardState()
        state.apply(_env("progress", {
            "stage": "mine_analyze", "done": 5, "total": 10,
            "percent": 50.0, "eta_seconds": 90.0,
        }))
        state.apply(_env("metrics", {"counters": {
            "parse_cache.hits": 1, "parse_cache.misses": 1,
        }}))
        state.apply(_env("warning", {"code": "empty-history"}))
        state.apply(_env("run", {"command": "study", "status": "ok"}))
        frame = render_dashboard(state)
        assert "mine_analyze" in frame
        assert "5/10 (50%)" in frame
        assert "eta 1m30s" in frame
        assert "[" in frame and "#" in frame
        assert "parse-cache 50%" in frame
        assert "empty-history×1" in frame
        assert "run study finished: ok" in frame

    def test_render_without_heartbeats(self):
        frame = render_dashboard(DashboardState())
        assert "no progress heartbeats" in frame

    def test_completed_stage_drops_the_eta(self):
        state = DashboardState()
        state.apply(_env("progress", {
            "stage": "mine", "done": 10, "total": 10,
            "percent": 100.0, "eta_seconds": 0.0,
        }))
        frame = render_dashboard(state)
        assert "10/10 (100%)" in frame
        assert "eta" not in frame


class TestRunTop:
    def test_plain_mode_writes_frames_and_stops_at_run_marker(self):
        out = io.StringIO()
        envelopes = [
            _env("progress", {
                "stage": "mine", "done": 1, "total": 2,
                "percent": 50.0, "eta_seconds": 1.0,
            }),
            _env("run", {"command": "study", "status": "ok"}, id=2),
            _env("progress", {"stage": "never-seen", "done": 1,
                              "total": 1, "percent": 100.0,
                              "eta_seconds": 0.0}, id=3),
        ]
        state = run_top(iter(envelopes), out=out, plain=True, interval=0.0)
        assert state.events == 2  # stopped at the run marker
        assert "never-seen" not in out.getvalue()
        assert "\x1b" not in out.getvalue()  # plain = no ANSI

    def test_max_events_bounds_the_read(self):
        out = io.StringIO()
        envelopes = [_env("span", {"name": "s"}, id=n) for n in range(1, 9)]
        state = run_top(
            iter(envelopes), out=out, plain=True, max_events=3,
            interval=0.0,
        )
        assert state.events == 3

    def test_ansi_mode_clears_between_frames(self):
        out = io.StringIO()
        run_top(
            iter([_env("span", {"name": "s"})]), out=out, interval=0.0,
        )
        assert out.getvalue().startswith("\x1b[H\x1b[J")

    def test_attach_source_reads_the_in_process_bus(self):
        bus = get_bus()
        bus.publish("progress", {
            "stage": "mine", "done": 1, "total": 1,
            "percent": 100.0, "eta_seconds": 0.0,
        })
        bus.publish("run", {"command": "study", "status": "ok"})
        out = io.StringIO()
        state = run_top(
            bus_envelopes(max_idle_seconds=0.2),
            out=out, plain=True, interval=0.0,
        )
        assert state.run_status == "ok"
        assert "mine" in out.getvalue()
