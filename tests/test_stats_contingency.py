"""Unit tests for χ² and the from-scratch r×c Fisher exact test."""

import pytest
import scipy.stats

from repro.stats import chi_square, fisher_exact_rxc


class TestChiSquare:
    def test_matches_scipy(self):
        table = [[10, 20], [20, 10], [5, 25]]
        ours = chi_square(table)
        theirs = scipy.stats.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_independent_table_not_significant(self):
        assert chi_square([[10, 10], [20, 20]]).p_value > 0.9

    def test_dependent_table_significant(self):
        assert chi_square([[30, 0], [0, 30]]).p_value < 1e-10

    def test_df_in_details(self):
        result = chi_square([[1, 2, 3], [4, 5, 6], [7, 8, 9], [1, 1, 1]])
        assert result.details["df"] == 6

    def test_zero_margin_rejected(self):
        with pytest.raises(ValueError):
            chi_square([[0, 0], [1, 2]])

    def test_negative_cell_rejected(self):
        with pytest.raises(ValueError):
            chi_square([[1, -1], [2, 3]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            chi_square([[1, 2], [3]])


class TestFisherExact2x2:
    """The 2×2 case must agree with scipy's two-sided fisher_exact."""

    @pytest.mark.parametrize(
        "table",
        [
            [[3, 7], [8, 2]],
            [[1, 9], [9, 1]],
            [[5, 5], [5, 5]],
            [[12, 3], [4, 11]],
            [[0, 10], [10, 0]],
            [[2, 0], [1, 7]],
        ],
    )
    def test_matches_scipy(self, table):
        ours = fisher_exact_rxc(table)
        _, p = scipy.stats.fisher_exact(table, alternative="two-sided")
        assert ours.details["method"] == "exact"
        assert ours.p_value == pytest.approx(p, rel=1e-9)


class TestFisherExactRxC:
    def test_exact_3x2(self):
        # Freeman–Halton on a small 3x2 table; sanity: perfect dependence
        # on a diagonal-ish pattern must be significant
        result = fisher_exact_rxc([[8, 0], [0, 8], [4, 4]])
        assert result.details["method"] == "exact"
        assert result.p_value < 0.01

    def test_independent_rxc_not_significant(self):
        result = fisher_exact_rxc([[5, 5], [6, 6], [4, 4]])
        assert result.p_value > 0.5

    def test_p_value_bounded(self):
        result = fisher_exact_rxc([[2, 2], [2, 2]])
        assert 0 < result.p_value <= 1

    def test_zero_rows_and_columns_dropped(self):
        with_zero = fisher_exact_rxc([[3, 7, 0], [8, 2, 0], [0, 0, 0]])
        without = fisher_exact_rxc([[3, 7], [8, 2]])
        assert with_zero.p_value == pytest.approx(without.p_value)

    def test_degenerate_after_dropping_rejected(self):
        with pytest.raises(ValueError):
            fisher_exact_rxc([[5, 0], [3, 0]])

    def test_monte_carlo_agrees_with_exact(self):
        table = [[6, 2], [3, 7], [2, 6]]
        exact = fisher_exact_rxc(table)
        monte = fisher_exact_rxc(
            table, max_exact_tables=1, monte_carlo_samples=60_000
        )
        assert exact.details["method"] == "exact"
        assert monte.details["method"] == "monte_carlo"
        assert monte.p_value == pytest.approx(exact.p_value, abs=0.02)

    def test_monte_carlo_deterministic_via_seed(self):
        table = [[6, 2], [3, 7], [2, 6]]
        a = fisher_exact_rxc(table, max_exact_tables=1, seed=42)
        b = fisher_exact_rxc(table, max_exact_tables=1, seed=42)
        assert a.p_value == b.p_value

    def test_taxon_sized_table_uses_monte_carlo(self):
        # the study's 6x2 tables (195 projects) have ~12.6M candidate
        # tables, so the Monte Carlo path handles them — quickly and
        # deterministically
        table = [[24, 9], [30, 32], [16, 9], [11, 24], [7, 11], [2, 20]]
        result = fisher_exact_rxc(table)
        assert result.details["method"] == "monte_carlo"
        assert result.p_value < 0.05  # clearly taxon-dependent pattern
