"""Unit tests for index/unique-constraint modelling and parsing."""

import pytest

from repro.diff import diff_ddl
from repro.schema import Index
from repro.sqlparser import parse_schema, parse_table


class TestIndexParsing:
    def test_key_clause(self):
        table = parse_table(
            "CREATE TABLE t (a INT, b INT, KEY idx_ab (a, b));"
        )
        assert table.indexes == [Index(("a", "b"), name="idx_ab")]

    def test_unique_key_clause(self):
        table = parse_table(
            "CREATE TABLE t (a INT, UNIQUE KEY uq_a (a));"
        )
        assert table.indexes[0].unique
        assert table.indexes[0].name == "uq_a"

    def test_anonymous_unique(self):
        table = parse_table("CREATE TABLE t (a INT, UNIQUE (a));")
        assert table.indexes[0].unique
        assert table.indexes[0].name is None

    def test_named_constraint_unique(self):
        table = parse_table(
            "CREATE TABLE t (a INT, CONSTRAINT uq UNIQUE (a));"
        )
        assert table.indexes[0].name == "uq"
        assert table.indexes[0].unique

    def test_fulltext_key(self):
        table = parse_table(
            "CREATE TABLE t (a TEXT, FULLTEXT KEY ft (a));"
        )
        assert table.indexes[0].kind == "FULLTEXT"

    def test_key_with_prefix_length(self):
        table = parse_table(
            "CREATE TABLE t (a VARCHAR(300), KEY idx_a (a(100)));"
        )
        assert table.indexes[0].columns == ("a",)

    def test_create_index_statement(self):
        result = parse_schema(
            "CREATE TABLE t (a INT);"
            "CREATE INDEX idx_a ON t (a);"
        )
        table = result.schema.table("t")
        assert table.indexes == [Index(("a",), name="idx_a")]

    def test_create_unique_index(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); CREATE UNIQUE INDEX u ON t (a);"
        )
        assert result.schema.table("t").indexes[0].unique

    def test_create_index_using_method(self):
        result = parse_schema(
            "CREATE TABLE t (a INT);"
            "CREATE INDEX i ON t USING btree (a);"
        )
        index = result.schema.table("t").indexes[0]
        assert index.kind == "BTREE"
        assert index.columns == ("a",)

    def test_create_index_on_unknown_table_is_issue(self):
        result = parse_schema("CREATE INDEX i ON ghost (a);")
        assert result.issues

    def test_alter_add_index(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD INDEX ia (a);"
        )
        assert result.schema.table("t").indexes[0].name == "ia"

    def test_alter_add_unique(self):
        result = parse_schema(
            "CREATE TABLE t (a INT); ALTER TABLE t ADD UNIQUE (a);"
        )
        assert result.schema.table("t").indexes[0].unique

    def test_alter_drop_index(self):
        result = parse_schema(
            "CREATE TABLE t (a INT, KEY ia (a));"
            "ALTER TABLE t DROP INDEX ia;"
        )
        assert result.schema.table("t").indexes == []

    def test_alter_drop_unknown_index_is_noop(self):
        result = parse_schema(
            "CREATE TABLE t (a INT, KEY ia (a));"
            "ALTER TABLE t DROP INDEX ghost;"
        )
        assert len(result.schema.table("t").indexes) == 1


class TestIndexesAndActivity:
    def test_index_changes_are_not_activity(self):
        """The study measures the logical schema only: adding or
        dropping an index must register zero Activity."""
        old = "CREATE TABLE t (a INT, b INT);"
        new = "CREATE TABLE t (a INT, b INT, KEY idx (a));"
        assert diff_ddl(old, new).is_identical

    def test_unique_change_is_not_activity(self):
        old = "CREATE TABLE t (a INT, KEY k (a));"
        new = "CREATE TABLE t (a INT, UNIQUE KEY k (a));"
        assert diff_ddl(old, new).is_identical


class TestIndexRendering:
    def test_render_roundtrip(self):
        table = parse_table(
            "CREATE TABLE t (a INT, b INT, UNIQUE KEY u (a), "
            "KEY k (a, b));"
        )
        reparsed = parse_table(table.render_sql())
        assert reparsed.indexes == table.indexes

    def test_copy_preserves_indexes(self):
        table = parse_table("CREATE TABLE t (a INT, KEY k (a));")
        clone = table.copy()
        clone.indexes.append(Index(("a",), name="extra"))
        assert len(table.indexes) == 1
