"""Robustness: the mining parser must never crash on damaged input.

Schema files in the wild are truncated, merged badly, or half-converted
between dialects.  The mining contract is: :func:`parse_schema` returns
a (possibly empty) schema plus diagnostics — it never raises.  These
tests mutate realistic dumps aggressively and hold the parser to that.
"""

import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlparser import parse_schema, tokenize

FIXTURES = Path(__file__).parent / "fixtures"
DUMPS = [
    (FIXTURES / "wordpress_like.sql").read_text(),
    (FIXTURES / "pgdump_like.sql").read_text(),
]


def mutate(text: str, rng: random.Random) -> str:
    """One random structural mutation of a dump."""
    kind = rng.randrange(6)
    if kind == 0:  # truncate anywhere
        return text[: rng.randrange(1, len(text))]
    if kind == 1:  # delete a random line
        lines = text.splitlines()
        del lines[rng.randrange(len(lines))]
        return "\n".join(lines)
    if kind == 2:  # duplicate a random chunk
        i = rng.randrange(len(text))
        j = min(len(text), i + rng.randrange(1, 200))
        return text[:j] + text[i:j] + text[j:]
    if kind == 3:  # inject garbage bytes
        i = rng.randrange(len(text))
        garbage = "".join(
            rng.choice("\"'`();,@#$%\\") for _ in range(rng.randrange(1, 8))
        )
        return text[:i] + garbage + text[i:]
    if kind == 4:  # flip case of a region
        i = rng.randrange(len(text))
        j = min(len(text), i + 100)
        return text[:i] + text[i:j].swapcase() + text[j:]
    # remove all semicolons from a region
    i = rng.randrange(len(text))
    j = min(len(text), i + 500)
    return text[:i] + text[i:j].replace(";", " ") + text[j:]


class TestMutationFuzz:
    @pytest.mark.parametrize("base_index", [0, 1])
    def test_parser_never_raises(self, base_index):
        rng = random.Random(2023 + base_index)
        for _ in range(150):
            text = DUMPS[base_index]
            for _ in range(rng.randrange(1, 4)):
                text = mutate(text, rng)
            result = parse_schema(text)  # must not raise
            assert result.schema is not None
            # every surviving table is still internally consistent
            for table in result.schema:
                assert len(set(a.key for a in table.attributes)) == len(
                    table.attributes
                )

    @pytest.mark.parametrize("base_index", [0, 1])
    def test_lexer_never_raises_lenient(self, base_index):
        rng = random.Random(77 + base_index)
        for _ in range(100):
            text = mutate(DUMPS[base_index], rng)
            tokens = tokenize(text)  # lenient mode must not raise
            assert isinstance(tokens, list)


class TestHypothesisFuzz:
    @settings(max_examples=80, deadline=None)
    @given(st.text(max_size=400))
    def test_arbitrary_text_never_crashes(self, text):
        result = parse_schema(text)
        assert result.statements_total >= 0

    @settings(max_examples=80, deadline=None)
    @given(
        st.text(
            alphabet="CREATE TABLE(xyz,INT);'\"`-/*\\\n ",
            max_size=300,
        )
    )
    def test_sql_shaped_noise_never_crashes(self, text):
        parse_schema(text)
