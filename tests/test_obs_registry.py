"""The run-history registry: record shape, the tolerant reader, the
median baseline, and the CLI loop (study runs append → ``obs history``
/ ``obs timeline`` read → ``bench-check --against-history`` compares)."""

import json

import pytest

from repro.obs.events import reset_recorder
from repro.obs.metrics import reset_metrics
from repro.obs.registry import (
    REGISTRY_FORMAT,
    RunRegistry,
    build_run_record,
    history_baseline,
    manifest_digest,
    record_from_payload,
    registry_for_store,
    render_timeline,
    timeline_values,
)
from repro.obs.regress import sample_from_dict
from repro.pipeline import DirStore, MemoryStore, Pipeline
from repro.pipeline.store import configure_store


@pytest.fixture(autouse=True)
def _fresh_obs_state():
    reset_recorder()
    reset_metrics()
    yield
    configure_store(None)
    reset_recorder()
    reset_metrics()


def bench_shaped(total=2.0, rss=100 * 2**20, **extra) -> dict:
    record = {
        "format": REGISTRY_FORMAT,
        "run_id": "abc123",
        "recorded_at": 1700000000.0,
        "command": "study",
        "projects": 7,
        "jobs": 1,
        "warning_count": 0,
        "stages": {"total": total, "mine": total / 2},
        "parse_cache": {"hit_rate": 0.5},
        "resources": {"peak_rss_bytes": rss},
        "environment": {"hostname": "h", "platform": "p", "cpu_count": 4},
    }
    record.update(extra)
    return record


class TestManifestDigest:
    def test_stable_and_order_independent(self):
        a = {"x": 1, "y": {"z": 2}}
        b = {"y": {"z": 2}, "x": 1}
        assert manifest_digest(a) == manifest_digest(b)
        assert len(manifest_digest(a)) == 64

    def test_content_sensitive(self):
        assert manifest_digest({"x": 1}) != manifest_digest({"x": 2})


class TestRunRegistry:
    def test_append_creates_the_registry_lazily(self, tmp_path):
        registry = RunRegistry(tmp_path / "store")
        assert not registry.path.exists()
        registry.append(bench_shaped())
        assert registry.path.exists()
        assert registry.path == tmp_path / "store" / "runs" / "history.jsonl"
        assert len(registry) == 1

    def test_records_preserve_append_order_and_limit(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for i in range(5):
            registry.append(bench_shaped(run_id=f"run-{i}"))
        ids = [r["run_id"] for r in registry.records()]
        assert ids == [f"run-{i}" for i in range(5)]
        assert [
            r["run_id"] for r in registry.records(limit=2)
        ] == ["run-3", "run-4"]

    def test_reader_skips_torn_and_foreign_lines(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(bench_shaped(run_id="good"))
        with open(registry.path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": \n')
            handle.write('{"no_stages": true}\n')
            handle.write("\n")
        registry.append(bench_shaped(run_id="later"))
        assert [r["run_id"] for r in registry.records()] == [
            "good", "later",
        ]

    def test_missing_registry_reads_empty(self, tmp_path):
        assert RunRegistry(tmp_path / "nowhere").records() == []

    def test_registry_for_store(self, tmp_path):
        assert registry_for_store(MemoryStore()) is None
        registry = registry_for_store(DirStore(tmp_path / "s"))
        assert registry is not None
        assert registry.root == tmp_path / "s"


class TestBuildRunRecord:
    @pytest.fixture(scope="class")
    def study(self):
        return Pipeline(scale=32, seed=77, store=MemoryStore()).study()

    def test_record_is_bench_shaped(self, study):
        record = build_run_record(
            command="study", study=study, seed=77, scale=32, jobs=1,
        )
        assert record["format"] == REGISTRY_FORMAT
        assert record["projects"] == len(study.projects)
        assert "total" in record["stages"]
        assert record["environment"]["hostname"]
        # the registry's whole point: sample_from_dict needs no
        # special case for a registry record
        sample = sample_from_dict(record, source="registry")
        assert sample.kind == "bench"
        assert sample.stages == record["stages"]
        assert sample.peak_rss_bytes == (
            record.get("resources", {}).get("peak_rss_bytes")
        )

    def test_manifest_digest_and_fingerprints_land(self, study):
        manifest = {"format": "x", "environment": {"hostname": "h"}}
        record = build_run_record(
            command="study", study=study, manifest=manifest,
            fingerprints={"aggregate": "f" * 64},
        )
        assert record["manifest_digest"] == manifest_digest(manifest)
        assert record["environment"] == {"hostname": "h"}
        assert record["fingerprints"] == {"aggregate": "f" * 64}

    def test_run_ids_differ_across_commands(self, study):
        a = build_run_record(command="study", study=study)
        b = build_run_record(command="report", study=study)
        assert a["run_id"] != b["run_id"]


class TestRecordFromPayload:
    def test_from_a_bench_payload(self):
        payload = {
            "projects": 7, "jobs": 2, "warning_count": 1,
            "stages": {"total": 3.0},
            "parse_cache": {"hit_rate": 0.9},
            "resources": {"peak_rss_bytes": 1},
        }
        record = record_from_payload(payload, source="BENCH_study.json")
        assert record["command"] == "import:BENCH_study.json"
        assert record["stages"] == {"total": 3.0}
        assert record["resources"] == {"peak_rss_bytes": 1}
        assert sample_from_dict(record).kind == "bench"

    def test_from_a_manifest_payload(self):
        payload = {
            "projects": 7,
            "skipped": ["a/b"],
            "timings": {"jobs": 4, "stages": {"total": 1.0}},
        }
        record = record_from_payload(payload, source="m.json")
        assert record["stages"] == {"total": 1.0}
        assert record["jobs"] == 4
        assert record["skipped"] == 1

    def test_rejects_a_stageless_payload(self):
        with pytest.raises(ValueError, match="no stages block"):
            record_from_payload({"hello": 1}, source="x.json")


class TestHistoryBaseline:
    def test_empty_history_raises(self):
        with pytest.raises(ValueError, match="empty"):
            history_baseline([])

    def test_median_over_numbers_nested_in_blocks(self):
        records = [
            bench_shaped(total=1.0, rss=100),
            bench_shaped(total=9.0, rss=300),
            bench_shaped(total=2.0, rss=200),
        ]
        merged = history_baseline(records)
        assert merged["stages"]["total"] == 2.0
        assert merged["resources"]["peak_rss_bytes"] == 200
        assert merged["command"] == "history-median[3]"

    def test_identity_fields_pin_to_the_latest_record(self):
        records = [
            bench_shaped(run_id="old", recorded_at=1.0),
            bench_shaped(run_id="new", recorded_at=2.0),
        ]
        merged = history_baseline(records)
        assert merged["run_id"] == "new"
        assert merged["recorded_at"] == 2.0

    def test_missing_blocks_median_over_the_present_ones(self):
        sparse = bench_shaped()
        del sparse["resources"]
        records = [
            bench_shaped(rss=100), sparse, bench_shaped(rss=300),
        ]
        merged = history_baseline(records)
        assert merged["resources"]["peak_rss_bytes"] == 200

    def test_baseline_feeds_bench_check(self):
        merged = history_baseline([bench_shaped(), bench_shaped()])
        sample = sample_from_dict(merged, source="median")
        assert sample.stages["total"] == 2.0
        assert sample.peak_rss_bytes == 100 * 2**20


class TestTimelineDegenerateHistories:
    """render_timeline on the histories that used to crash plotters:
    empty, single-record, all-equal, all-zero, and sparse series."""

    def test_empty_registry_raises_not_renders(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            render_timeline([], "total")

    def test_unknown_stage_raises_with_a_hint(self):
        with pytest.raises(ValueError, match="no record carries"):
            render_timeline([bench_shaped()], "figments")

    def test_single_record_plots_one_bar_without_a_marker(self):
        out = render_timeline([bench_shaped(total=2.0)], "total")
        assert "timeline: total over 1 run(s)" in out
        assert "#" in out
        assert "! regression" not in out

    def test_all_equal_series_plots_full_width_bars(self):
        records = [bench_shaped(total=3.0) for _ in range(3)]
        out = render_timeline(records, "total", width=8)
        bars = [
            line for line in out.splitlines() if line.endswith("#" * 8)
        ]
        assert len(bars) == 3
        assert "! regression" not in out

    def test_all_zero_series_never_divides_by_zero(self):
        records = [bench_shaped(total=0.0) for _ in range(2)]
        out = render_timeline(records, "total")
        assert "over 2 run(s)" in out

    def test_sparse_series_renders_a_dash_for_missing_values(self):
        gap = bench_shaped()
        del gap["stages"]
        out = render_timeline(
            [bench_shaped(total=1.0), gap, bench_shaped(total=1.5)],
            "total",
        )
        dash_lines = [
            line for line in out.splitlines() if line.rstrip().endswith("-")
        ]
        assert len(dash_lines) == 1

    def test_regression_marker_on_a_big_jump(self):
        records = [bench_shaped(total=1.0), bench_shaped(total=2.0)]
        assert "! regression" in render_timeline(records, "total")
        gentle = [bench_shaped(total=1.0), bench_shaped(total=1.2)]
        assert "! regression" not in render_timeline(gentle, "total")

    def test_long_run_ids_are_clamped_to_the_column(self):
        record = bench_shaped(run_id="a" * 40)
        out = render_timeline([record], "total")
        assert "a" * 13 in out
        assert "a" * 14 not in out

    def test_timeline_values_rss_converts_to_mib(self):
        records = [bench_shaped(rss=64 * 2**20)]
        values, unit = timeline_values(records, "rss")
        assert unit == "MiB"
        assert values == [64.0]

    def test_timeline_values_stage_passes_seconds_through(self):
        values, unit = timeline_values([bench_shaped(total=2.0)], "total")
        assert unit == "s"
        assert values == [2.0]


class TestRegistryCli:
    """Three study runs → three records → history / timeline /
    against-history, end to end through ``repro.cli.main``."""

    SEED_ARGS = ["--seed", "77", "--scale", "32"]

    @pytest.fixture(scope="class")
    def run_dir(self, tmp_path_factory):
        from repro.cli import main

        root = tmp_path_factory.mktemp("registry-cli")
        store_dir = root / "artifacts"
        manifest = root / "candidate.json"
        base = ["study", *self.SEED_ARGS, "--store-dir", str(store_dir)]
        assert main(base) == 0  # cold
        assert main(base) == 0  # warm
        assert main([*base, "--manifest", str(manifest)]) == 0  # warm
        configure_store(None)
        reset_recorder()
        reset_metrics()
        return root

    def test_each_study_run_appends_one_record(self, run_dir):
        registry = RunRegistry(run_dir / "artifacts")
        records = registry.records()
        assert len(records) == 3
        assert all(r["command"] == "study" for r in records)
        assert all(r["projects"] == 7 for r in records)
        # the cold run missed, the warm reruns replayed everything
        assert records[0]["artifact_store"]["hit_rate"] == 0.0
        assert records[-1]["artifact_store"]["hit_rate"] == 1.0
        assert all(
            r["resources"]["peak_rss_bytes"] > 0 for r in records
        )
        assert all("aggregate" in r["fingerprints"] for r in records)

    def test_history_table(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "obs", "history",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 0
        out = capsys.readouterr().out
        assert "3 records shown" in out
        assert out.count("study") >= 3
        assert "100%" in out  # the warm store hit rate

    def test_history_json(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "obs", "history", "--json", "--limit", "2",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        assert all(r["format"] == REGISTRY_FORMAT for r in records)

    def test_history_since_filters_by_recorded_at(self, run_dir, capsys):
        from repro.cli import main

        # every real run recorded after this cutoff: all three shown
        assert main([
            "obs", "history", "--json", "--since", "2020-01-01",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 0
        assert len(json.loads(capsys.readouterr().out)) == 3
        # a far-future cutoff filters everything out
        assert main([
            "obs", "history", "--since", "2999-01-01",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_history_since_rejects_non_iso_input(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "obs", "history", "--since", "last tuesday",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 2
        assert "not an ISO 8601" in capsys.readouterr().err

    def test_history_table_columns_stay_aligned(self, run_dir, capsys):
        from repro.cli import main

        # a record with pathological field widths must not shear the
        # table: run ids and commands are clamped to their columns
        store_dir = run_dir / "aligned-store"
        registry = RunRegistry(store_dir)
        registry.append(bench_shaped())
        registry.append(bench_shaped(
            run_id="f" * 64,
            command="bench-import-with-a-very-long-name",
        ))
        assert main([
            "obs", "history",
            "--store-dir", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        rows = [
            line for line in out.splitlines()
            if line and not line.startswith(("registry:", "run ", "-"))
        ]
        assert len({len(row) for row in rows}) == 1
        assert "f" * 14 not in out

    def test_history_import_seeds_a_record(self, run_dir, capsys):
        from repro.cli import main

        payload = bench_shaped()
        seed_file = run_dir / "seed.json"
        seed_file.write_text(json.dumps(payload))
        store_dir = run_dir / "imported-store"
        assert main([
            "obs", "history", "--import", str(seed_file),
            "--store-dir", str(store_dir),
        ]) == 0
        assert "imported seed.json as run" in capsys.readouterr().out
        records = RunRegistry(store_dir).records()
        assert len(records) == 1
        assert records[0]["command"] == "import:seed.json"

    def test_timeline_total(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "obs", "timeline", "--stage", "total",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 0
        out = capsys.readouterr().out
        assert "timeline: total over 3 run(s)" in out
        assert "#" in out  # the bars

    def test_timeline_rss(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "obs", "timeline", "--stage", "rss",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 0
        out = capsys.readouterr().out
        assert "MiB" in out

    def test_timeline_unknown_stage_is_an_error(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "obs", "timeline", "--stage", "figments",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 2
        assert "no record carries" in capsys.readouterr().err

    def test_no_store_dir_is_an_error(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        assert main(["obs", "history"]) == 2
        assert "no directory artifact store" in capsys.readouterr().err

    def test_bench_check_against_history(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "bench-check", str(run_dir / "candidate.json"),
            "--against-history", "3",
            "--store-dir", str(run_dir / "artifacts"),
            "--report-only",
        ]) == 0
        out = capsys.readouterr().out
        assert "history-median[3]" in out
        assert "peak_rss" in out
        assert "verdict:" in out

    def test_against_history_refuses_two_positionals(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "bench-check", "a.json", "b.json", "--against-history", "3",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 2
        assert "one positional" in capsys.readouterr().err

    def test_against_history_needs_a_positive_n(self, run_dir, capsys):
        from repro.cli import main

        assert main([
            "bench-check", "a.json", "--against-history", "0",
            "--store-dir", str(run_dir / "artifacts"),
        ]) == 2
        assert "N >= 1" in capsys.readouterr().err
