"""Unit tests for taxa features and the rule-based classifier."""

import pytest

from repro.heartbeat import Heartbeat, Month
from repro.taxa import (
    TAXA_ORDER,
    HeartbeatFeatures,
    Taxon,
    TaxonThresholds,
    classify,
)


def hb(values):
    return Heartbeat(Month(2015, 1), [float(v) for v in values])


class TestHeartbeatFeatures:
    def test_initial_month_excluded(self):
        features = HeartbeatFeatures.of(hb([50, 0, 3]))
        assert features.initial_size == 50
        assert features.post_initial_total == 3

    def test_active_months(self):
        features = HeartbeatFeatures.of(hb([10, 0, 2, 0, 5]))
        assert features.active_months == 2

    def test_peak_and_share(self):
        features = HeartbeatFeatures.of(hb([10, 2, 8]))
        assert features.peak == 8
        assert features.peak_share == pytest.approx(0.8)

    def test_zero_post_activity(self):
        features = HeartbeatFeatures.of(hb([10, 0, 0]))
        assert features.post_initial_total == 0
        assert features.peak == 0
        assert features.peak_share == 0
        assert features.spike_count == 0

    def test_spike_count_uses_floor(self):
        # total 6, spike threshold = max(10, 0.25*6) = 10: no spikes
        features = HeartbeatFeatures.of(hb([10, 3, 3]))
        assert features.spike_count == 0
        # one month with >= 10
        features = HeartbeatFeatures.of(hb([10, 12, 3]))
        assert features.spike_count == 1

    def test_single_month_heartbeat(self):
        features = HeartbeatFeatures.of(hb([40]))
        assert features.post_initial_total == 0
        assert features.duration_months == 1


class TestClassifier:
    def test_frozen(self):
        assert classify(hb([40, 0, 0, 0])) is Taxon.FROZEN

    def test_almost_frozen(self):
        assert classify(hb([40, 0, 2, 0, 3])) is Taxon.ALMOST_FROZEN

    def test_focused_shot_and_frozen(self):
        assert classify(hb([20, 0, 30, 0, 1])) is (
            Taxon.FOCUSED_SHOT_AND_FROZEN
        )

    def test_focused_shot_and_low(self):
        # dominant spike plus a non-trivial residual
        values = [20, 3, 30, 4, 3, 2, 3, 2]
        assert classify(hb(values)) is Taxon.FOCUSED_SHOT_AND_LOW

    def test_moderate(self):
        values = [30] + [3, 0, 4, 2, 0, 3, 4, 2, 3, 0, 2]
        assert classify(hb(values)) is Taxon.MODERATE

    def test_active(self):
        values = [40] + [9, 8, 9, 7, 9, 8, 9, 9, 8, 9, 7, 9]
        assert classify(hb(values)) is Taxon.ACTIVE

    def test_active_needs_many_active_months(self):
        # same total volume in 3 big months: a spiky profile, not ACTIVE
        values = [40, 0, 45, 0, 45, 0, 12]
        taxon = classify(hb(values))
        assert taxon is not Taxon.ACTIVE

    def test_thresholds_are_respected(self):
        lenient = TaxonThresholds(almost_frozen_total=100.0)
        values = [30] + [3, 0, 4, 2, 0, 3, 4, 2, 3, 0, 2]
        assert classify(hb(values), thresholds=lenient) is (
            Taxon.ALMOST_FROZEN
        )

    def test_taxa_order_has_all_six(self):
        assert len(TAXA_ORDER) == 6
        assert set(TAXA_ORDER) == set(Taxon)

    def test_frozenish_property(self):
        assert Taxon.FROZEN.is_frozenish
        assert Taxon.ALMOST_FROZEN.is_frozenish
        assert Taxon.FOCUSED_SHOT_AND_FROZEN.is_frozenish
        assert not Taxon.MODERATE.is_frozenish
        assert not Taxon.ACTIVE.is_frozenish

    def test_display_names(self):
        assert Taxon.FOCUSED_SHOT_AND_LOW.display_name == "FocusedShot & Low"


class TestClassifierOnGeneratedProjects:
    """The classifier should broadly agree with generation ground truth."""

    @pytest.fixture(scope="class")
    def corpus_sample(self):
        from repro.corpus import generate_corpus
        from repro.mining import mine_project

        pairs = []
        for project in generate_corpus(seed=777):
            history = mine_project(project.repository)
            pairs.append(
                (project.true_taxon, classify(history.schema_heartbeat))
            )
        return pairs

    def test_overall_agreement(self, corpus_sample):
        agree = sum(1 for truth, pred in corpus_sample if truth is pred)
        assert agree / len(corpus_sample) >= 0.80

    def test_frozen_is_never_confused_with_active(self, corpus_sample):
        for truth, pred in corpus_sample:
            if truth is Taxon.FROZEN:
                assert pred is Taxon.FROZEN  # frozen is unambiguous

    def test_errors_are_adjacent(self, corpus_sample):
        """Misclassifications should stay within similar activity levels."""
        severity = {
            Taxon.FROZEN: 0,
            Taxon.ALMOST_FROZEN: 1,
            Taxon.FOCUSED_SHOT_AND_FROZEN: 2,
            Taxon.MODERATE: 2,
            Taxon.FOCUSED_SHOT_AND_LOW: 3,
            Taxon.ACTIVE: 4,
        }
        for truth, pred in corpus_sample:
            assert abs(severity[truth] - severity[pred]) <= 2
