"""FIG4 — breakdown of projects per 10%-synchronicity value range.

Paper: five 20%-wide buckets over the 195 projects; §9 summarises that
only ~20% of projects co-evolve hand-in-hand (top bucket), and that "all
kinds of behaviors" exist — every bucket is populated.
"""

from repro.analysis import fig4_sync_histogram
from repro.report import render_fig4


def test_fig4_histogram(benchmark, study, emit):
    histogram = benchmark(fig4_sync_histogram, study.projects, theta=0.10)
    emit("fig4_sync_histogram", render_fig4(histogram))

    assert histogram.total == 195
    # all kinds of behaviours: every bucket populated
    assert all(count > 0 for count in histogram.counts)
    # hand-in-hand co-evolution is a minority (~20% in the paper)
    hand_in_hand = histogram.hand_in_hand_count / histogram.total
    assert 0.05 <= hand_in_hand <= 0.35
    # the mass sits in the mid-low ranges, not at the synchronous end
    assert max(histogram.counts) in histogram.counts[1:3]


def test_fig4_theta_5_is_stricter(study):
    loose = fig4_sync_histogram(study.projects, theta=0.10)
    strict = fig4_sync_histogram(study.projects, theta=0.05)
    # tightening the band can only push projects toward lower buckets
    loose_top_half = loose.counts[3] + loose.counts[4]
    strict_top_half = strict.counts[3] + strict.counts[4]
    assert strict_top_half <= loose_top_half
