"""PERF — mine-only microbenchmark, written to BENCH_mine.json.

The mine stage dominates the cold study run (see BENCH_study.json), so
this harness times it in isolation: the canonical 195-project corpus is
generated once, then every project is mined serially through a fresh
memory-only parse cache (the cold pass) and once more through the now
warm cache.  The payload is a ``bench-check``-compatible record — run
``repro bench-check BENCH_mine.json <candidate> --stage mine`` to gate
the hot path — and carries the statement-level fragment-cache counters
that the incremental parse engine lives or dies by.

``BENCH_mine_baseline.json`` preserves the pre-incremental-engine
record of this same benchmark; it is committed history, never
overwritten.  Run via ``make bench-mine`` — gated on the tier-1 suite
like every BENCH writer.
"""

import json
import os
import time
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_mine.json"


def test_mine_only_breakdown_and_bench_json():
    """Cold + warm mine over the canonical corpus; persist the record."""
    import repro.perf.cache as cache_module
    from repro.corpus import generate_corpus
    from repro.mining import mine_project
    from repro.obs.manifest import runtime_environment
    from repro.perf.cache import CACHE_DIR_ENV, ParseCache

    corpus = generate_corpus()
    saved_cache = cache_module._active
    saved_env = os.environ.pop(CACHE_DIR_ENV, None)
    try:
        cache_module._active = ParseCache()
        cold_start = time.perf_counter()
        histories = [mine_project(p.repository) for p in corpus]
        cold_seconds = time.perf_counter() - cold_start
        cold_stats = cache_module._active.stats

        warm_start = time.perf_counter()
        rehistories = [mine_project(p.repository) for p in corpus]
        warm_seconds = time.perf_counter() - warm_start
        warm_stats = cache_module._active.stats - cold_stats
    finally:
        cache_module._active = saved_cache
        if saved_env is not None:
            os.environ[CACHE_DIR_ENV] = saved_env

    assert len(histories) == len(corpus) == len(rehistories)
    total_activity = sum(
        h.schema_history.total_activity for h in histories
    )
    assert total_activity == sum(
        h.schema_history.total_activity for h in rehistories
    ), "warm mine must reproduce the cold activity totals"
    assert warm_stats.hit_rate > 0.95

    payload = {
        "benchmark": "mine_only",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "projects": len(corpus),
        "jobs": 1,
        "environment": runtime_environment(),
        "stages": {
            "mine": round(cold_seconds, 6),
            "total": round(cold_seconds, 6),
        },
        "parse_cache": cold_stats.as_dict(),
        "total_activity": total_activity,
        "warm_mine": {
            "seconds": round(warm_seconds, 6),
            "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
            "parse_cache": warm_stats.as_dict(),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nmine (cold): {cold_seconds:.3f}s over {len(corpus)} projects; "
        f"warm: {warm_seconds:.3f}s\n[written to {BENCH_PATH}]"
    )


def test_bench_mine_json_is_valid():
    """The emitted record parses and is bench-check comparable."""
    if not BENCH_PATH.exists():
        import pytest

        pytest.skip("BENCH_mine.json not written yet (run the full file)")
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["benchmark"] == "mine_only"
    assert payload["stages"]["mine"] > 0
    assert 0.0 <= payload["parse_cache"]["hit_rate"] <= 1.0

    from repro.obs.regress import sample_from_dict

    sample = sample_from_dict(payload, source=str(BENCH_PATH))
    assert sample.kind == "bench"
    assert "mine" in sample.stages
