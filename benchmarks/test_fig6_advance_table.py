"""FIG6 — life percentage of schema advance over source and over time.

Paper's table: 41% of projects keep schema ahead of source for >= 90% of
their life (51% for time); 71% keep it ahead of source for >= half the
life (78% for time); exactly 2 projects are "(blank)"; time-advance
dominates source-advance throughout the cumulative column.
"""

from repro.analysis import fig6_advance_table
from repro.report import render_fig6


def test_fig6_table(benchmark, study, emit):
    table = benchmark(fig6_advance_table, study.projects)
    emit("fig6_advance_table", render_fig6(table))

    assert table.total == 195
    assert table.blank_source == 2
    assert table.blank_time == 2

    top = table.row("0.9-1")
    # the top range dominates the distribution for both columns
    assert top.source_count == max(r.source_count for r in table.rows)
    assert top.time_count == max(r.time_count for r in table.rows)
    # paper: 41% (source) / 51% (time) — generous bands
    assert 0.30 <= top.source_pct <= 0.60
    assert 0.40 <= top.time_pct <= 0.70
    # time-advance dominates source-advance
    assert top.time_count > top.source_count


def test_fig6_majority_ahead_half_their_life(study):
    table = fig6_advance_table(study.projects)
    # cumulative down to the 0.5-0.6 row = fraction ahead >= 50% of life
    source_half = table.row("0.5-0.6").source_cum_pct
    time_half = table.row("0.5-0.6").time_cum_pct
    # paper: 71% and 78%
    assert 0.60 <= source_half <= 0.90
    assert 0.70 <= time_half <= 0.95
    assert time_half >= source_half


def test_fig6_cumulative_is_monotone(study):
    table = fig6_advance_table(study.projects)
    source_cum = [r.source_cum_pct for r in table.rows]
    time_cum = [r.time_cum_pct for r in table.rows]
    assert source_cum == sorted(source_cum)
    assert time_cum == sorted(time_cum)
