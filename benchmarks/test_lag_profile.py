"""SUPPLEMENTARY — RQ2 triangulated with raw-activity cross-correlation.

§4 stresses that θ "is not a measure of lag".  Here the lag is measured
directly: for each project, the discrete cross-correlation of the raw
monthly schema- and project-activity series, over a ±6-month window.
Positive best lag = project activity echoes earlier schema activity
(schema leads).  Expectation from the co-change model (and §3.3's case
study): the zero-lag peak dominates — schema commits carry source work —
with the asymmetric remainder skewed toward schema leading.
"""

from collections import Counter

from repro.coevolution import cross_correlation
from repro.corpus import generate_corpus
from repro.mining import mine_project
from repro.report import bar_chart


def test_lag_distribution(benchmark, emit):
    corpus = generate_corpus()

    def measure():
        lags = []
        for project in corpus:
            history = mine_project(project.repository)
            if history.duration_months < 6:
                continue
            if history.schema_heartbeat.total <= 0:
                continue
            profile = cross_correlation(
                history.schema_heartbeat,
                history.project_heartbeat,
                max_lag=6,
            )
            lags.append(profile.best_lag)
        return lags

    lags = benchmark.pedantic(measure, rounds=1, iterations=1)
    counts = Counter(lags)
    zero = counts[0]
    schema_leading = sum(v for k, v in counts.items() if k > 0)
    project_leading = sum(v for k, v in counts.items() if k < 0)

    chart = bar_chart(
        [f"lag {k:+d}" for k in range(-6, 7)],
        [counts.get(k, 0) for k in range(-6, 7)],
        title=(
            "Best cross-correlation lag (positive = schema leads, "
            f"n={len(lags)})"
        ),
    )
    summary = (
        f"zero-lag (co-committed): {zero} ({zero / len(lags):.0%})\n"
        f"schema leading: {schema_leading}  "
        f"project leading: {project_leading}"
    )
    emit("lag_profile", chart + "\n\n" + summary)

    # the mode is synchronised change — co-change in the same commits
    assert zero == max(counts.values())
    assert zero / len(lags) >= 0.2
    # among asymmetric projects, schema leading is at least as common
    assert schema_leading >= project_leading - 5
    # both directions exist: co-evolution is not one deterministic shape
    assert schema_leading > 0
    assert project_leading > 0
