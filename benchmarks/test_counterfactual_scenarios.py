"""SUPPLEMENTARY — counterfactual worlds (§9's discussion, quantified).

The paper's implications section argues that rigidity is a consequence
of the current development style and that tooling could enable
continuously-evolving schemata.  Scenario corpora test what the study's
measures *would* report under different worlds: an observed-style mix,
an extreme-rigidity world, an agile world of actively-maintained
schemata, and a migration-shot world.  The expectation: early-attainment
dominance and always-in-advance are properties of the population mix,
not artifacts of the measurement method.
"""

import pytest

from repro.analysis import run_study
from repro.corpus import SCENARIOS, generate_scenario
from repro.report import render_table


@pytest.fixture(scope="module")
def scenario_studies():
    return {name: run_study(generate_scenario(name)) for name in SCENARIOS}


def test_counterfactual_scenarios(benchmark, scenario_studies, emit):
    def summarise():
        rows = {}
        for name, study in scenario_studies.items():
            headline = study.headline()
            n = headline["projects"]
            rows[name] = {
                "attain75_first20": headline["attain75_first20"] / n,
                "always_over_time": headline["always_over_time"] / n,
                "hand_in_hand": headline["hand_in_hand"] / n,
                "attain100_after80": headline["attain100_after80"] / n,
            }
        return rows

    rows = benchmark(summarise)
    emit(
        "counterfactual_scenarios",
        render_table(
            ["scenario", "75% early", "always-time", "hand-in-hand",
             "late finishers"],
            [
                [
                    name,
                    f"{values['attain75_first20']:.0%}",
                    f"{values['always_over_time']:.0%}",
                    f"{values['hand_in_hand']:.0%}",
                    f"{values['attain100_after80']:.0%}",
                ]
                for name, values in rows.items()
            ],
            title="Study measures under counterfactual population mixes",
        ),
    )

    observed = rows["OBSERVED"]
    rigid = rows["RIGID_WORLD"]
    agile = rows["AGILE_WORLD"]

    # rigidity measures order as the mix dictates
    assert (
        rigid["attain75_first20"]
        > observed["attain75_first20"]
        > agile["attain75_first20"]
    )
    assert (
        rigid["always_over_time"]
        > observed["always_over_time"]
        > agile["always_over_time"]
    )
    # the agile world keeps schemata evolving late
    assert agile["attain100_after80"] > rigid["attain100_after80"]
    # all four worlds keep every measure within [0, 1]
    for values in rows.values():
        for value in values.values():
            assert 0 <= value <= 1


def test_scenario_corpora_are_valid(scenario_studies):
    for name, study in scenario_studies.items():
        assert len(study) == 195, name
        assert not study.skipped, name
