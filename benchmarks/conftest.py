"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper over the
canonical 195-project corpus, times the computation, asserts the
paper's *shape* (orderings, rough magnitudes, crossovers — not exact
counts, per EXPERIMENTS.md), and writes the rendered artifact under
``benchmarks/output/``.
"""

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def study():
    from repro.analysis import canonical_study

    return canonical_study()


@pytest.fixture(scope="session")
def emit():
    """Write a rendered figure to benchmarks/output/ and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
