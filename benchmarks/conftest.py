"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper over the
canonical 195-project corpus, times the computation, asserts the
paper's *shape* (orderings, rough magnitudes, crossovers — not exact
counts, per EXPERIMENTS.md), and writes the rendered artifact under
``benchmarks/output/``.

Set ``REPRO_STUDY_JOBS=N`` to drive the session study through the
parallel driver (``canonical_study(jobs=N)``), so CI can exercise the
process-pool path; results are identical to the serial default.
"""

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def study_jobs() -> int:
    """Worker count for the session study (REPRO_STUDY_JOBS, default 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_STUDY_JOBS", "1")))
    except ValueError:
        return 1


@pytest.fixture(scope="session")
def study():
    from repro.analysis import canonical_study

    return canonical_study(jobs=study_jobs())


@pytest.fixture(scope="session")
def emit():
    """Write a rendered figure to benchmarks/output/ and echo it."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
