"""SUPPLEMENTARY — gravitation to rigidity as a survival curve.

A Kaplan–Meier restatement of §6: the event is a schema's *last*
logical change; S(t) is the share of (ever-evolving) schemata still
evolving after life-fraction t.  Rigidity shows as a steep early drop;
the resistant population shows as a heavy censored tail.
"""

from repro.analysis import schema_survival
from repro.report import bar_chart


def test_schema_survival(benchmark, study, emit):
    survival = benchmark(schema_survival, study.projects)

    checkpoints = (0.2, 0.35, 0.5, 0.65, 0.8)
    lines = [
        "Schema-activity survival over project life "
        f"(n={survival.curve.n_subjects} ever-evolving projects, "
        f"{survival.censored} censored, "
        f"{survival.never_evolved} never evolved):"
    ]
    for t in checkpoints:
        lines.append(
            f"  S({t:.0%}) = {survival.curve.survival_at(t):.0%} still "
            "evolving"
        )
    median = survival.curve.median_time()
    lines.append(
        "  median stopping point: "
        + (f"{median:.0%} of life" if median else "beyond observation")
    )
    chart = bar_chart(
        [f"quiet by {t:.0%}" for t in checkpoints],
        [round(100 * survival.share_quiet_by(t)) for t in checkpoints],
        title="Share of schemata gone quiet (percent)",
    )
    emit("survival_curve", "\n".join(lines) + "\n\n" + chart)

    # the curve is a valid survival function
    values = [survival.curve.survival_at(t) for t in checkpoints]
    assert all(0 <= v <= 1 for v in values)
    assert values == sorted(values, reverse=True)
    # rigidity: a large share goes quiet by mid-life...
    assert survival.share_quiet_by(0.5) >= 0.30
    # ...while resistance keeps a tail alive late
    assert survival.curve.survival_at(0.8) >= 0.10
