"""ABLATION — robustness of the design choices DESIGN.md calls out.

Two knobs the paper fixes by fiat are swept here:

* the θ acceptance band (the paper reports 10% and says the 5% variant
  correlates at Kendall τ = 0.67) — the Fig. 4 shape must not be an
  artifact of θ = 10%;
* the taxon classifier's thresholds — the per-taxon findings (frozen
  attains early, active late) must survive reasonable threshold shifts.
"""

from repro.analysis import fig4_sync_histogram
from repro.stats import kendall_tau_b, median
from repro.taxa import Taxon, TaxonThresholds, classify


def test_ablation_theta_band(benchmark, study, emit):
    def sweep():
        return {
            theta: fig4_sync_histogram(study.projects, theta=theta)
            for theta in (0.05, 0.10, 0.15, 0.20)
        }

    histograms = benchmark(sweep)
    lines = ["theta sweep — hand-in-hand share per acceptance band:"]
    for theta, histogram in histograms.items():
        share = histogram.hand_in_hand_count / histogram.total
        lines.append(
            f"  theta={theta:.0%}: top bucket {share:.0%}, "
            f"buckets={list(histogram.counts)}"
        )
    emit("ablation_theta", "\n".join(lines))

    shares = [
        h.hand_in_hand_count / h.total for h in histograms.values()
    ]
    # widening the band never shrinks the hand-in-hand share...
    assert shares == sorted(shares)
    # ...but even at theta=20% hand-in-hand stays a minority
    assert shares[-1] <= 0.5


def test_ablation_theta_kendall(study):
    """Paper: Kendall correlation between 5%- and 10%-sync is 0.67."""
    sync5 = [p.sync5 for p in study.projects]
    sync10 = [p.sync10 for p in study.projects]
    tau = kendall_tau_b(sync5, sync10).statistic
    assert 0.55 <= tau <= 0.9


def test_ablation_classifier_thresholds(benchmark, study, emit):
    variants = {
        "default": TaxonThresholds(),
        "strict": TaxonThresholds(
            almost_frozen_total=6.0,
            spike_magnitude=14.0,
            active_total=110.0,
        ),
        "lenient": TaxonThresholds(
            almost_frozen_total=16.0,
            spike_magnitude=8.0,
            active_total=60.0,
            active_months=6,
        ),
    }

    def sweep():
        out = {}
        for name, thresholds in variants.items():
            labels = [
                classify(p.joint and _heartbeat_of(p), thresholds=thresholds)
                for p in study.projects
            ]
            out[name] = labels
        return out

    def _heartbeat_of(p):
        # the classified heartbeat is not retained on ProjectMeasures;
        # rebuild it from the joint schema series scaled by activity
        from repro.heartbeat import Heartbeat

        fractions = [p.joint.schema[0]] + [
            b - a for a, b in zip(p.joint.schema, p.joint.schema[1:])
        ]
        values = [f * p.schema_total_activity for f in fractions]
        return Heartbeat(p.joint.start, [max(0.0, v) for v in values])

    labelled = benchmark(sweep)

    lines = ["classifier threshold sweep — early-attainment medians:"]
    findings = {}
    for name, labels in labelled.items():
        frozen_att = [
            p.attainment(0.75)
            for p, t in zip(study.projects, labels)
            if t in (Taxon.FROZEN, Taxon.ALMOST_FROZEN)
        ]
        active_att = [
            p.attainment(0.75)
            for p, t in zip(study.projects, labels)
            if t is Taxon.ACTIVE
        ]
        findings[name] = (median(frozen_att), median(active_att))
        lines.append(
            f"  {name}: frozen-side median {findings[name][0]:.2f}, "
            f"active median {findings[name][1]:.2f} "
            f"(n_active={len(active_att)})"
        )
    emit("ablation_classifier", "\n".join(lines))

    # the core finding — frozen taxa attain early, active late — holds
    # under every threshold variant
    for name, (frozen_median, active_median) in findings.items():
        assert frozen_median < active_median, name
        assert frozen_median <= 0.35, name
