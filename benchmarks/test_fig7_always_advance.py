"""FIG7 — schema always in advance of time / source / both, per taxon.

Paper (§5.2): 80 projects (41%) always ahead of time, 57 (29%) of
source, 55 (28%) of both; "both" nearly coincides with "source"; and
"the more frozen a taxon is, the higher its probability to demonstrate
an early advance of schema over both time and source code".
"""

from repro.analysis import fig7_always_advance
from repro.report import render_fig7
from repro.taxa import Taxon


def test_fig7_counts(benchmark, study, emit):
    always = benchmark(fig7_always_advance, study.projects)
    emit("fig7_always_advance", render_fig7(always))

    n = always.total
    assert n == 195
    time_share = always.total_over_time / n
    source_share = always.total_over_source / n
    both_share = always.total_over_both / n
    # paper: 41% / 29% / 28% — generous bands preserving the ordering
    assert 0.30 <= time_share <= 0.60
    assert 0.20 <= source_share <= 0.48
    assert time_share > source_share
    # "both" is almost identical to "source" (gap of a few projects)
    assert always.total_over_source - always.total_over_both <= 8
    assert both_share >= 0.18


def test_fig7_frozen_gradient(study):
    """Frozen-side taxa are always-ahead far more often than Active."""
    always = fig7_always_advance(study.projects)

    def both_rate(taxon):
        row = always.row(taxon)
        return row.over_both / row.total if row.total else 0.0

    frozen_rate = both_rate(Taxon.FROZEN)
    active_rate = both_rate(Taxon.ACTIVE)
    assert frozen_rate > active_rate
    assert frozen_rate >= 0.4
    assert active_rate <= 0.25
    # the frozen triple dominates the active triple in aggregate
    frozen_side = sum(
        always.row(t).over_both
        for t in (Taxon.FROZEN, Taxon.ALMOST_FROZEN,
                  Taxon.FOCUSED_SHOT_AND_FROZEN)
    )
    active_side = sum(
        always.row(t).over_both
        for t in (Taxon.MODERATE, Taxon.FOCUSED_SHOT_AND_LOW, Taxon.ACTIVE)
    )
    assert frozen_side > active_side
