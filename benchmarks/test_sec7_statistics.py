"""SEC7 — the statistical analysis battery.

Paper: Shapiro–Wilk p < 0.007 for every attribute; Kruskal–Wallis taxon
-> 10%-synchronicity p ≈ 0.003 and taxon -> 75%-attainment p ≈ 0.006
(frozen taxa attain 75% before 20% of life, Active's median 0.47);
source-lag and both-lag χ²/Fisher significant at α = 0.05; Kendall
τ(5%-sync, 10%-sync) ≈ 0.67 and τ(advance-time, advance-source) ≈ 0.75.
"""

from repro.analysis import sec7_statistics
from repro.report import render_statistics
from repro.taxa import Taxon


def test_sec7_battery(benchmark, study, emit):
    report = benchmark(sec7_statistics, study.projects)
    emit("sec7_statistics", render_statistics(report))

    # normality: nothing is normal at the 0.05 level (paper: all
    # p < 0.007 on the real corpus; here at most one attribute sits
    # between 0.007 and 0.05 — see EXPERIMENTS.md)
    for name, result in report.normality.items():
        assert result.p_value < 0.05, name
    strict = sum(
        1 for r in report.normality.values() if r.p_value < 0.007
    )
    assert strict >= len(report.normality) - 1

    # taxon effects significant at the paper's alpha level
    assert report.sync_effect.test.p_value < 0.05
    assert report.attainment_effect.test.p_value < 0.05

    # frozen taxa attain 75% early; Active attains late (paper: 0.47)
    medians = report.attainment_effect.medians
    assert medians[Taxon.FROZEN] <= 0.25
    assert medians[Taxon.ALMOST_FROZEN] <= 0.35
    assert medians[Taxon.ACTIVE] >= 0.35
    assert medians[Taxon.ACTIVE] > medians[Taxon.FROZEN]

    # lag tests: source and both significant (paper: p = 0.02 / 0.01)
    assert report.lag_tests["source"].chi2.p_value < 0.05
    assert report.lag_tests["both"].chi2.p_value < 0.05
    assert report.lag_tests["source"].fisher.p_value < 0.05
    assert report.lag_tests["both"].fisher.p_value < 0.05

    # Kendall correlations in the paper's neighbourhood
    assert 0.5 <= report.tau_sync.statistic <= 0.9       # paper 0.67
    assert 0.5 <= report.tau_advance.statistic <= 0.9    # paper 0.75


def test_sec7_chi2_and_fisher_agree_on_significance(study):
    report = sec7_statistics(study.projects)
    for lag in report.lag_tests.values():
        chi_significant = lag.chi2.p_value < 0.05
        fisher_significant = lag.fisher.p_value < 0.05
        # the two tests may differ near the boundary, but not wildly
        if lag.chi2.p_value < 0.01 or lag.chi2.p_value > 0.25:
            assert chi_significant == fisher_significant
