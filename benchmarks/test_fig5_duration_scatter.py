"""FIG5 — scatter of duration vs 10%-synchronicity per taxon.

Paper: "a box of durations up to 60 months where all behaviors are
present (synchronicities of up to 100%)", and past the 5-year mark a
gravitation toward lower/mid-range synchronicity — long-lived projects
stop co-evolving their schema as actively.
"""

from repro.analysis import fig5_duration_scatter
from repro.report import render_fig5
from repro.stats import median


def test_fig5_scatter(benchmark, study, emit):
    points = benchmark(fig5_duration_scatter, study.projects, theta=0.10)
    emit("fig5_duration_scatter", render_fig5(points))

    assert len(points) == 195
    young = [p.synchronicity for p in points if p.duration_months <= 60]
    old = [p.synchronicity for p in points if p.duration_months > 60]
    # the <=60-month box contains (nearly) the full range of behaviours
    assert min(young) <= 0.15
    assert max(young) >= 0.85
    # long-lived projects exist and skew away from the synchronous top
    assert len(old) >= 10
    high_sync_rate_old = sum(1 for s in old if s >= 0.8) / len(old)
    high_sync_rate_young = sum(1 for s in young if s >= 0.8) / len(young)
    assert high_sync_rate_old <= high_sync_rate_young + 0.05
    # ... and gravitate to mid-range values
    assert 0.15 <= median(old) <= 0.65
