"""FIG1/FIG3 — joint progress diagrams, one example per taxon.

The paper's Fig. 1 shows one project's joint cumulative progress; Fig. 3
shows six examples, one per taxon, with the frozen-side taxa in sync and
the active-side taxa out of sync.  This bench regenerates a per-taxon
gallery from the canonical corpus and checks the sync/out-of-sync
contrast the figure illustrates.
"""

from repro.report import render_joint_progress
from repro.stats import median
from repro.taxa import TAXA_ORDER, Taxon


def _gallery(study):
    blocks = []
    for taxon in TAXA_ORDER:
        group = study.by_taxon(taxon)
        if not group:
            continue
        # the figure shows a representative project: take the median-sync
        # member so the gallery is stable and characteristic
        group = sorted(group, key=lambda p: p.sync10)
        example = group[len(group) // 2]
        blocks.append(
            render_joint_progress(
                example.joint,
                title=(
                    f"[{taxon.display_name}] {example.name} — "
                    f"{example.duration_months} months, "
                    f"10%-sync {example.sync10:.0%}"
                ),
            )
        )
    return "\n\n".join(blocks)


def test_fig3_gallery(benchmark, study, emit):
    gallery = benchmark(_gallery, study)
    emit("fig3_joint_progress", gallery)
    # one diagram per taxon present in the classified corpus
    present = sum(1 for t in TAXA_ORDER if study.by_taxon(t))
    assert gallery.count("S=schema") == present


def test_fig3_frozen_side_more_synchronous(study):
    """Fig. 3's contrast: shot-taxa exemplars sit above the most
    out-of-sync taxa (the paper's (a)-(c) vs (d)-(f) split)."""
    sync_by_taxon = {
        taxon: median([p.sync10 for p in study.by_taxon(taxon)])
        for taxon in TAXA_ORDER
        if study.by_taxon(taxon)
    }
    frozen_side = [
        sync_by_taxon[t]
        for t in (Taxon.FROZEN, Taxon.ALMOST_FROZEN,
                  Taxon.FOCUSED_SHOT_AND_FROZEN)
        if t in sync_by_taxon
    ]
    out_side = [
        sync_by_taxon[t]
        for t in (Taxon.MODERATE, Taxon.FOCUSED_SHOT_AND_LOW)
        if t in sync_by_taxon
    ]
    assert min(frozen_side) >= max(out_side) - 0.15
    assert max(frozen_side) > min(out_side)
