"""SUPPLEMENTARY — related-work claims the paper builds on, re-measured.

Not figures of the paper itself, but quantitative claims from the
related work it cites (§2.2), measured on the canonical corpus with the
same machinery:

* [24]: change is local — "60%-90% of changes refer to 20% of the
  tables and nearly 40% of schema tables did not change";
* [24]: "only half of the software changes accompanied the schema
  change in the same revision";
* [37]: embedded schemata restructure rather than only grow.
"""

import pytest

from repro.analysis import corpus_cochange
from repro.corpus import generate_corpus
from repro.mining import (
    HistoryAggregates,
    growth_vs_restructuring,
    mine_project,
)
from repro.stats import median


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus()


@pytest.fixture(scope="module")
def histories(corpus):
    return [mine_project(p.repository) for p in corpus]


def test_change_locality(benchmark, histories, emit):
    def measure():
        shares = []
        unchanged = []
        for history in histories:
            aggregates = HistoryAggregates.of(history.schema_history)
            if aggregates.total_post_initial_changes < 4:
                continue  # locality is meaningless for 1-3 changes
            shares.append(aggregates.change_concentration(fraction=0.2))
            unchanged.append(aggregates.unchanged_table_fraction)
        return shares, unchanged

    shares, unchanged = benchmark(measure)
    emit(
        "related_change_locality",
        (
            "Change locality over projects with >= 4 post-initial "
            f"changes (n={len(shares)}):\n"
            f"  median share of changes in top-20% tables: "
            f"{median(shares):.0%}  ([24]: 60-90%)\n"
            f"  median fraction of never-changed tables:   "
            f"{median(unchanged):.0%}  ([24]: ~40%)"
        ),
    )
    assert len(shares) >= 30
    # locality: a small set of tables dominates the change volume
    assert median(shares) >= 0.4
    # a substantial share of tables never changes after birth
    assert median(unchanged) >= 0.2


def test_cochange_same_revision(benchmark, corpus, emit):
    pairs = [(p.repository, p.spec.ddl_path) for p in corpus]
    result = benchmark(corpus_cochange, pairs, window=2)
    emit(
        "related_cochange",
        (
            f"Source co-change around schema commits (n={result.projects} "
            "projects):\n"
            f"  mean same-revision co-change rate: "
            f"{result.mean_same_commit_rate:.0%}  ([24]: ~50%)\n"
            f"  mean rate within ±{result.window} commits: "
            f"{result.mean_window_rate:.0%}"
        ),
    )
    # co-change in the same revision is common but far from universal
    assert 0.30 <= result.mean_same_commit_rate <= 0.95
    # widening to a commit window can only find more adaptation
    assert result.mean_window_rate >= result.mean_same_commit_rate


def test_growth_vs_restructuring(benchmark, histories, emit):
    def measure():
        growth = shrink = mutate = 0
        for history in histories:
            g, s, m = growth_vs_restructuring(history.schema_history)
            growth += g
            shrink += s
            mutate += m
        return growth, shrink, mutate

    growth, shrink, mutate = benchmark(measure)
    total = growth + shrink + mutate
    emit(
        "related_growth_restructuring",
        (
            "Post-initial change composition over the corpus:\n"
            f"  growth (births/injections):      {growth} "
            f"({growth / total:.0%})\n"
            f"  shrinkage (deletions/ejections): {shrink} "
            f"({shrink / total:.0%})\n"
            f"  mutation (type/PK changes):      {mutate} "
            f"({mutate / total:.0%})"
        ),
    )
    assert total > 0
    # restructuring (shrinkage + mutation) is a substantial share of
    # activity, not a rounding error ([37]'s qualitative finding)
    assert (shrink + mutate) / total >= 0.2
    # but growth still exists everywhere
    assert growth / total >= 0.3
