"""ABLATION — chronon granularity and corpus-seed sensitivity.

§8 flags the month as the study's chronon; here every measure is
recomputed quarterly and half-yearly and correlated against the monthly
baseline.  The seed sweep re-runs the *entire* study on fresh corpora —
the paper-shape claims must not depend on one lucky draw.
"""

from repro.analysis import chronon_sensitivity, seed_sensitivity


def test_chronon_sensitivity(benchmark, study, emit):
    def sweep():
        return {
            k: chronon_sensitivity(study.projects, chronon_months=k)
            for k in (3, 6)
        }

    results = benchmark(sweep)
    lines = ["chronon sensitivity vs monthly baseline:"]
    for chronon, comparisons in results.items():
        for row in comparisons:
            lines.append(
                f"  {row.measure} @ {chronon}mo chronon: "
                f"tau={row.kendall_tau:.2f}, "
                f"median {row.median_monthly:.2f} -> "
                f"{row.median_coarse:.2f}"
            )
    emit("ablation_chronon", "\n".join(lines))

    for comparisons in results.values():
        for row in comparisons:
            # per-project orderings survive the coarser chronon
            assert row.kendall_tau >= 0.55, row
            # medians stay in the same neighbourhood
            assert abs(row.median_monthly - row.median_coarse) <= 0.25


def test_seed_sensitivity(benchmark, emit):
    spreads = benchmark(seed_sensitivity, (101, 202, 303))
    lines = ["headline numbers across three fresh corpora (n=195 each):"]
    for spread in spreads:
        lines.append(
            f"  {spread.measure}: values={list(spread.values)} "
            f"mean={spread.mean:.1f} spread={spread.spread:.0f}"
        )
    emit("ablation_seeds", "\n".join(lines))

    by_name = {s.measure: s for s in spreads}
    for seed_index in range(3):
        # the §5.2 ordering holds for every seed
        assert (
            by_name["always_over_time"].values[seed_index]
            >= by_name["always_over_source"].values[seed_index]
        )
        # early 75%-attainment stays the dominant behaviour
        assert by_name["attain75_first20"].values[seed_index] >= 0.30 * 195
        # the resistance tail never vanishes
        assert by_name["attain100_after80"].values[seed_index] >= 0.15 * 195
    # headline numbers are stable to within a modest band across seeds
    for spread in spreads:
        assert spread.spread <= 0.15 * 195, spread.measure
