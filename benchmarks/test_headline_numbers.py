"""HEADLINE — the abstract's and §4–§6's quoted numbers, side by side.

Regenerates every headline number the paper quotes and prints it next
to the paper's value.  Assertions encode the *claims*, with bands wide
enough to hold across generator seeds (exact counts are seed-dependent;
see EXPERIMENTS.md).
"""

from repro.report import render_table

PAPER = {
    "blanks": 2,
    "always_over_time": 80,
    "always_over_source": 57,
    "always_over_both": 55,
    "attain75_first20": 98,
    "attain75_after80": 27,
    "attain80_first20": 94,
    "attain80_first50": 130,
    "attain100_first20": 60,
    "attain100_first50": 93,
    "attain100_after80": 62,
    "advance_src_ge_half": 138,
    "advance_time_ge_half": 152,
}


def test_headline_numbers(benchmark, study, emit):
    headline = benchmark(study.headline)

    rows = []
    for key, measured in headline.items():
        paper_value = PAPER.get(key, "")
        rows.append([key, measured, paper_value])
    emit(
        "headline_numbers",
        render_table(
            ["measure", "measured", "paper"],
            rows,
            title="Headline numbers — measured vs paper (n=195)",
        ),
    )

    # bootstrap intervals for the always-in-advance shares, so the
    # paper's point values can be compared against a sampling band
    from repro.stats import share_interval

    interval_lines = ["Bootstrap 95% intervals (always-in-advance shares):"]
    for name, flag in (
        ("time", lambda p: p.coevolution.always_over_time),
        ("source", lambda p: p.coevolution.always_over_source),
        ("both", lambda p: p.coevolution.always_over_both),
    ):
        interval = share_interval([flag(p) for p in study.projects])
        paper_share = {"time": 80, "source": 57, "both": 55}[name] / 195
        interval_lines.append(
            f"  {name}: {interval}   paper: {paper_share:.3f}"
        )
    emit("headline_bootstrap", "\n".join(interval_lines))

    n = headline["projects"]
    assert n == 195
    assert headline["blanks"] == 2

    # §5.2: always-advance ordering and magnitudes
    assert headline["always_over_time"] > headline["always_over_source"]
    assert (
        headline["always_over_source"] - headline["always_over_both"] <= 8
    )
    assert 0.30 * n <= headline["always_over_time"] <= 0.60 * n

    # abstract: "98 of the 195 projects attained 75% of the evolution in
    # just the first 20%" — a strong early majority
    assert headline["attain75_first20"] >= 0.30 * n
    # §6.2: 2/3 reach 80% of evolution within half their life
    assert 0.50 * n <= headline["attain80_first50"] <= 0.80 * n
    # resistance to rigidity exists at every level
    assert headline["attain75_after80"] >= 5
    assert headline["attain100_after80"] >= 0.20 * n

    # §5.1: 71% / 78% ahead for at least half their life
    assert headline["advance_src_ge_half"] >= 0.60 * n
    assert headline["advance_time_ge_half"] >= 0.70 * n
    assert (
        headline["advance_time_ge_half"]
        >= headline["advance_src_ge_half"]
    )

    # §9: only ~20% co-evolve hand-in-hand
    assert headline["hand_in_hand"] <= 0.35 * n
