"""SUPPLEMENTARY — the per-taxon and per-duration drill-down tables.

§7 discusses per-taxon medians and §4 reads Fig. 5 through duration
bands; this bench regenerates both drill-down tables as artifacts and
pins the gradients they show.
"""

from repro.analysis import duration_band_summaries, taxon_summaries
from repro.report import render_table
from repro.taxa import Taxon


def test_taxon_drilldown(benchmark, study, emit):
    rows = benchmark(taxon_summaries, study.projects)
    emit(
        "taxon_drilldown",
        render_table(
            ["taxon", "n", "sync10", "attain75", "duration",
             "schema act.", "always-both"],
            [
                [
                    row.taxon.display_name,
                    row.count,
                    f"{row.median_sync10:.2f}",
                    f"{row.median_attainment75:.2f}",
                    f"{row.median_duration:.0f}",
                    f"{row.median_schema_activity:.0f}",
                    f"{row.always_both_rate:.0%}",
                ]
                for row in rows
            ],
            title="Per-taxon medians (the §7 drill-down)",
        ),
    )

    by_taxon = {row.taxon: row for row in rows}
    # activity gradient: the frozen side sits far below Active (frozen
    # and almost-frozen are both dominated by the initial birth, so
    # their medians are interchangeable)
    frozen_side = max(
        by_taxon[Taxon.FROZEN].median_schema_activity,
        by_taxon[Taxon.ALMOST_FROZEN].median_schema_activity,
    )
    assert by_taxon[Taxon.ACTIVE].median_schema_activity >= 3 * frozen_side
    # attainment gradient: frozen early, active late
    assert (
        by_taxon[Taxon.FROZEN].median_attainment75
        < by_taxon[Taxon.ACTIVE].median_attainment75
    )
    # always-both gradient: frozen far above active
    assert (
        by_taxon[Taxon.FROZEN].always_both_rate
        > by_taxon[Taxon.ACTIVE].always_both_rate
    )


def test_duration_bands(benchmark, study, emit):
    rows = benchmark(duration_band_summaries, study.projects)
    emit(
        "duration_bands",
        render_table(
            ["band", "n", "median sync", "min", "max", "sync>=0.8"],
            [
                [
                    row.label,
                    row.count,
                    f"{row.median_sync10:.2f}",
                    f"{row.min_sync10:.2f}",
                    f"{row.max_sync10:.2f}",
                    f"{row.high_sync_rate:.0%}",
                ]
                for row in rows
            ],
            title="Synchronicity per duration band (the Fig. 5 reading)",
        ),
    )

    assert sum(row.count for row in rows) == len(study)
    long_band = rows[-1]
    assert long_band.count >= 10
    # §4: the long-lived band gravitates away from the synchronous top
    assert long_band.high_sync_rate <= 0.35
    assert 0.15 <= long_band.median_sync10 <= 0.70
