"""PERF — bounded-memory scaling benchmark, written to BENCH_scale.json.

The streaming engine's contract is that driver memory stays roughly
flat as the corpus grows: the backpressured map window holds a constant
number of shards in flight, the aggregate accumulator spills row
batches, and the watchdog releases the parse cache under pressure.
This harness measures that directly — one cold capped study per corpus
size (default 195 and 1000 projects, override with
``REPRO_BENCH_SCALE_POINTS=N,M,...``), each into a throwaway on-disk
store under ``--limit-memory`` (default 512 MiB,
``REPRO_BENCH_SCALE_LIMIT_MB``).

The payload is a ``bench-check``-compatible record whose headline
blocks (``stages`` / ``resources`` / ``streaming``) describe the
*largest* corpus, plus a per-size ``scaling`` table; ``repro
bench-check BENCH_scale.json <candidate>`` gates both absolute peak
RSS and the peak-RSS-per-project ratio.  Run via ``make bench-scale``
— gated on the tier-1 suite like every BENCH writer.
"""

import json
import os
import tempfile
import time
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

DEFAULT_POINTS = (195, 1000)
DEFAULT_LIMIT_MB = 512


def _scale_points() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_SCALE_POINTS")
    if not raw:
        return DEFAULT_POINTS
    return tuple(sorted(int(part) for part in raw.split(",") if part))


def test_capped_scaling_and_bench_json():
    """Cold capped studies over growing corpora; persist the record."""
    from repro.obs.events import reset_recorder
    from repro.obs.manifest import runtime_environment
    from repro.obs.metrics import reset_metrics
    from repro.pipeline.graph import Pipeline
    from repro.pipeline.store import DirStore

    limit_mb = int(
        os.environ.get("REPRO_BENCH_SCALE_LIMIT_MB", DEFAULT_LIMIT_MB)
    )
    points = _scale_points()
    runs: dict[int, dict] = {}
    for n in points:
        with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
            reset_recorder()
            reset_metrics()
            pipe = Pipeline(
                projects=n,
                limit_memory_mb=limit_mb,
                store=DirStore(Path(tmp) / "store"),
            )
            study = pipe.study()
            runs[n] = {
                "timings": pipe.timings.as_dict(),
                "projects": len(study.projects),
                "skipped": len(study.skipped),
            }
        reset_recorder()
        reset_metrics()

    for n, run in runs.items():
        assert run["projects"] + run["skipped"] == n
        resources = run["timings"].get("resources") or {}
        peak = resources.get("peak_rss_bytes")
        assert peak is not None, f"{n}-project run recorded no RSS"
        assert peak < limit_mb * 2**20, (
            f"{n}-project capped run peaked at {peak / 2**20:.0f} MiB, "
            f"over the {limit_mb} MiB limit"
        )

    # sub-linear: per-project peak RSS must *fall* as the corpus grows
    # (peak may not scale with N — the bar the streaming engine holds)
    small, large = points[0], points[-1]
    small_peak = runs[small]["timings"]["resources"]["peak_rss_bytes"]
    large_peak = runs[large]["timings"]["resources"]["peak_rss_bytes"]
    assert large_peak * small < small_peak * large, (
        f"peak RSS grew {small_peak / 2**20:.0f} -> "
        f"{large_peak / 2**20:.0f} MiB from {small} to {large} projects "
        "(linear or worse)"
    )

    head = runs[large]["timings"]
    payload = {
        "benchmark": "scale_study",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "projects": large,
        "skipped": runs[large]["skipped"],
        "jobs": 1,
        "limit_memory_mb": limit_mb,
        "environment": runtime_environment(),
        "stages": head["stages"],
        "parse_cache": head.get("parse_cache"),
        "resources": head.get("resources"),
        "streaming": head.get("streaming"),
        "scaling": {
            str(n): {
                "projects": n,
                "total_seconds": runs[n]["timings"]["stages"]["total"],
                "peak_rss_bytes": runs[n]["timings"]["resources"][
                    "peak_rss_bytes"
                ],
                "streaming": runs[n]["timings"].get("streaming"),
            }
            for n in points
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nscale: peak RSS {small_peak / 2**20:.0f} MiB @ {small} -> "
        f"{large_peak / 2**20:.0f} MiB @ {large} projects under a "
        f"{limit_mb} MiB cap\n[written to {BENCH_PATH}]"
    )


def test_bench_scale_json_is_valid():
    """The emitted record parses and is bench-check comparable."""
    if not BENCH_PATH.exists():
        import pytest

        pytest.skip("BENCH_scale.json not written yet (run the full file)")
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["benchmark"] == "scale_study"
    assert payload["resources"]["peak_rss_bytes"] > 0

    from repro.obs.regress import sample_from_dict

    sample = sample_from_dict(payload, source=str(BENCH_PATH))
    assert sample.kind == "bench"
    assert sample.peak_rss_bytes and sample.peak_rss_bytes > 0
    assert sample.rss_per_project and sample.rss_per_project > 0
    assert sample.streaming is not None
