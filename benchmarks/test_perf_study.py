"""PERF — per-stage timing of the full study, written to BENCH_study.json.

Not a paper artifact: the machine-readable perf trajectory of the
extraction pipeline.  Each run records the stage breakdown (generate /
mine / analyze / figures), the parse-cache hit rates and a warm-cache
re-study measurement at the repo root, so future PRs can compare
against the committed history of ``BENCH_study.json``.

Run via ``make bench`` — the Makefile refuses to reach this file (and
therefore to overwrite ``BENCH_study.json``) unless the tier-1 suite
passes first.
"""

import json
import os
import time
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_study.json"


def _study_jobs() -> int:
    """Mirror of conftest.study_jobs (kept importable standalone)."""
    try:
        return max(1, int(os.environ.get("REPRO_STUDY_JOBS", "1")))
    except ValueError:
        return 1


def test_study_stage_breakdown_and_bench_json(study, tmp_path_factory):
    """The session study carries timings; persist them machine-readably."""
    timings = study.timings
    assert timings.stages.get("generate", 0) > 0
    assert timings.stages.get("mine", 0) > 0
    assert timings.stages.get("analyze", 0) > 0
    assert timings.cache.lookups > 0

    with timings.timed("figures"):
        study.headline()
        study.fig4()
        study.fig5()
        study.fig6()
        study.fig7()
        study.fig8()

    # warm-cache re-study through a disk store: a cold pass fills the
    # cache (in every worker when parallel), a second pass over the same
    # corpus hits it ~100% and the mine stage collapses.
    import repro.perf.cache as cache_module
    from repro.analysis import run_study
    from repro.corpus import generate_corpus
    from repro.perf.cache import CACHE_DIR_ENV, configure_cache

    saved_cache = cache_module._active
    saved_env = os.environ.get(CACHE_DIR_ENV)
    try:
        configure_cache(tmp_path_factory.mktemp("parse-cache"))
        corpus = generate_corpus()
        jobs = _study_jobs()
        cold_start = time.perf_counter()
        cold = run_study(corpus, jobs=jobs)
        cold_seconds = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        warm = run_study(corpus, jobs=jobs)
        warm_seconds = time.perf_counter() - warm_start
    finally:
        cache_module._active = saved_cache
        if saved_env is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = saved_env
    assert cold.projects == study.projects
    assert warm.projects == study.projects
    assert warm.timings.cache.hit_rate > 0.95

    from repro.obs.manifest import runtime_environment

    payload = {
        "benchmark": "canonical_study",
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "projects": len(study),
        "skipped": len(study.skipped),
        # host fingerprint: `repro bench-check` refuses cross-machine
        # comparisons against this record unless explicitly allowed
        "environment": runtime_environment(),
        **timings.as_dict(),
        "warm_restudy": {
            "cold_seconds": round(cold_seconds, 6),
            "seconds": round(warm_seconds, 6),
            "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
            "parse_cache": warm.timings.cache.as_dict(),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n{study.timings.render()}\n[written to {BENCH_PATH}]")


def test_bench_json_is_valid_and_complete(study):
    """The emitted file parses and names every pipeline stage."""
    if not BENCH_PATH.exists():
        import pytest

        pytest.skip("BENCH_study.json not written yet (run the full file)")
    payload = json.loads(BENCH_PATH.read_text())
    for stage in ("generate", "mine", "analyze", "figures", "total"):
        assert stage in payload["stages"], f"missing stage {stage}"
    assert 0.0 <= payload["parse_cache"]["hit_rate"] <= 1.0
    assert payload["projects"] == len(study)
    assert payload["warm_restudy"]["parse_cache"]["hit_rate"] > 0.95
