"""SUPPLEMENTARY — the cost of schema evolution to surrounding code.

The paper's closing conjecture (§9): developers avoid schema change
because of "the effect schema evolution has to the surrounding code
(i.e., crashes and semantic inconsistencies) and the resulting effort".
This bench makes the cost term measurable: a realistic embedded-SQL
workload is generated per project and the project's *real* schema
history is replayed against it (with developer-style repair after each
hit).  Related anchors: [28] reports ~19 code changes per table
addition; [24] estimates 10–100 lines per atomic change.
"""

import pytest

from repro.analysis import replay_burden
from repro.corpus import generate_corpus
from repro.mining import mine_project
from repro.stats import median
from repro.taxa import Taxon, classify


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus()


def test_burden_replay(benchmark, corpus, emit):
    def replay_all():
        rows = []
        for project in corpus:
            history = mine_project(project.repository)
            summary = replay_burden(
                history.schema_history,
                name=project.name,
                n_queries=20,
                seed=13,
            )
            taxon = classify(history.schema_heartbeat)
            rows.append((taxon, summary))
        return rows

    rows = benchmark.pedantic(replay_all, rounds=1, iterations=1)

    evolving = [
        (taxon, summary)
        for taxon, summary in rows
        if summary.total_activity > 0
    ]
    lines = [
        "Maintenance burden of real schema histories on a 20-query "
        f"workload (n={len(evolving)} evolving projects):"
    ]
    per_taxon: dict[Taxon, list[float]] = {}
    for taxon, summary in evolving:
        per_taxon.setdefault(taxon, []).append(
            summary.affected_per_change
        )
    for taxon, values in per_taxon.items():
        lines.append(
            f"  {taxon.display_name}: median "
            f"{median(values):.2f} affected queries per atomic change "
            f"(n={len(values)})"
        )
    total_breaks = sum(s.total_breaks for _, s in evolving)
    total_affected = sum(s.total_affected for _, s in evolving)
    total_activity = sum(s.total_activity for _, s in evolving)
    lines.append(
        f"  corpus-wide: {total_breaks} breaks / {total_affected} "
        f"affected over {total_activity} atomic changes "
        f"({total_affected / total_activity:.2f} per change)"
    )
    emit("burden_replay", "\n".join(lines))

    # the conjecture's premise: schema change has a real, nonzero cost
    assert total_breaks > 0
    assert total_affected / total_activity > 0.02
    # evolution-heavy projects pay in absolute terms: the total number
    # of affected queries grows with total activity
    heavy = [s for _, s in evolving if s.total_activity >= 50]
    light = [s for _, s in evolving if 0 < s.total_activity <= 10]
    assert heavy and light
    assert median([s.total_affected for s in heavy]) > median(
        [s.total_affected for s in light]
    )
