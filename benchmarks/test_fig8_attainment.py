"""FIG8 — attainment of α% of schema activity per project-life range.

Paper: 98/195 attain 75% of evolution within the first 20% of life and
27 only after 80%; 94 attain 80% early and 130 within half the life
(the schema-specific Pareto reading); for 100%, 60 complete within the
first 20%, 93 within half, and 62 resist past 80% of their life.
"""

from repro.analysis import fig8_attainment
from repro.report import render_fig8


def test_fig8_breakdown(benchmark, study, emit):
    breakdown = benchmark(fig8_attainment, study.projects)
    emit("fig8_attainment", render_fig8(breakdown))

    n = len(study.projects)
    for alpha in breakdown.alphas:
        assert sum(breakdown.counts[alpha]) == n

    # 75%-attainment: the early range dominates (paper: 98/195 = 50%)
    early75 = breakdown.early_count(0.75)
    assert early75 == max(breakdown.counts[0.75])
    assert early75 / n >= 0.30
    # the resistance tail exists (paper: 27 late attainers)
    assert 5 <= breakdown.late_count(0.75) <= 50

    # 80%-attainment within half the life: paper 130/195 = 2/3
    within_half = breakdown.count(0.80, 0) + breakdown.count(0.80, 1)
    assert 0.50 <= within_half / n <= 0.80

    # 100%-attainment: half-ish complete within half the life (paper 48%)
    att100_half = breakdown.count(1.00, 0) + breakdown.count(1.00, 1)
    assert 0.35 <= att100_half / n <= 0.70
    # and a large resistant block finishes only after 80% (paper 31%)
    assert 0.20 <= breakdown.late_count(1.00) / n <= 0.45


def test_fig8_early_attainment_decreases_with_alpha(study):
    """Reaching a higher completion level early is strictly harder."""
    breakdown = fig8_attainment(study.projects)
    early = [breakdown.early_count(a) for a in (0.50, 0.75, 0.80, 1.00)]
    assert early == sorted(early, reverse=True)
