"""PERF — throughput of the extraction pipeline components.

Not a paper artifact: harness-health benchmarks for the SQL parser, the
diff engine, the git-log parser and a full single-project mine, so
regressions in the substrate are visible.
"""

import pytest

from repro.corpus import ProjectSpec, generate_project, profile_for
from repro.diff import diff_schemas
from repro.heartbeat import Month
from repro.mining import mine_project
from repro.sqlparser import parse_schema
from repro.taxa import Taxon
from repro.vcs import parse_git_log


@pytest.fixture(scope="module")
def big_project():
    spec = ProjectSpec(
        name="perf/big",
        taxon=Taxon.ACTIVE,
        seed=99,
        vendor="mysql",
        duration_months=120,
        start=Month(2010, 1),
    )
    return generate_project(spec, profile_for(Taxon.ACTIVE))


def test_perf_parse_schema(benchmark, big_project):
    ddl = big_project.ddl_versions[-1]
    result = benchmark(parse_schema, ddl)
    assert len(result.schema) >= 1


def test_perf_diff_schemas(benchmark, big_project):
    old = parse_schema(big_project.ddl_versions[0]).schema
    new = parse_schema(big_project.ddl_versions[-1]).schema
    delta = benchmark(diff_schemas, old, new)
    assert delta.total_activity >= 0


def test_perf_parse_git_log(benchmark, big_project):
    commits = benchmark(parse_git_log, big_project.git_log_text)
    assert len(commits) == len(big_project.repository.commits)


def test_perf_mine_project(benchmark, big_project):
    history = benchmark(mine_project, big_project.repository)
    assert history.schema_heartbeat.total > 0


def test_perf_generate_project(benchmark):
    spec = ProjectSpec(
        name="perf/gen",
        taxon=Taxon.MODERATE,
        seed=7,
        vendor="postgres",
        duration_months=48,
        start=Month(2012, 1),
    )

    def generate():
        return generate_project(spec, profile_for(Taxon.MODERATE))

    project = benchmark(generate)
    assert len(project.ddl_versions) >= 2
