"""Build a custom corpus, classify taxa, and validate against ground truth.

Shows the corpus generator as a library: define your own taxa mix,
generate a smaller corpus, run the study over it, check the taxon
classifier against the generator's ground-truth labels, and round-trip
the corpus through the on-disk dataset format.

Run:  python examples/custom_corpus.py
"""

import dataclasses
import tempfile
from collections import Counter
from pathlib import Path

from repro.analysis import run_study
from repro.corpus import CANONICAL_PROFILES, generate_corpus
from repro.io import load_corpus, save_corpus
from repro.mining import mine_project
from repro.taxa import classify


def main() -> None:
    # a 40-project corpus dominated by active and moderate schemata
    custom_profiles = tuple(
        dataclasses.replace(
            profile,
            count={
                "frozen": 4,
                "almost_frozen": 6,
                "focused_shot_and_frozen": 6,
                "moderate": 10,
                "focused_shot_and_low": 6,
                "active": 8,
            }[profile.taxon.value],
        )
        for profile in CANONICAL_PROFILES
    )
    corpus = generate_corpus(
        seed=20260706, profiles=custom_profiles, blank_projects=0
    )
    print(f"Generated {len(corpus)} projects")

    study = run_study(corpus)
    print("\nClassified taxa distribution:")
    for taxon, count in Counter(
        p.taxon.display_name for p in study.projects
    ).most_common():
        print(f"  {taxon}: {count}")

    agree = sum(
        1 for p in study.projects if p.taxon is p.true_taxon
    )
    print(
        f"\nClassifier vs generation ground truth: "
        f"{agree}/{len(study.projects)} "
        f"({agree / len(study.projects):.0%} agreement)"
    )

    histogram = study.fig4()
    print("\n10%-synchronicity buckets:", list(histogram.counts))
    print(
        "always in advance of both:",
        study.fig7().total_over_both,
        "projects",
    )

    # round-trip through the on-disk dataset format
    with tempfile.TemporaryDirectory() as tmp:
        root = save_corpus(corpus, Path(tmp) / "corpus")
        loaded = load_corpus(root)
        reclassified = [
            classify(mine_project(p.repository).schema_heartbeat)
            for p in loaded
        ]
        original = [p.taxon for p in study.projects]
        matches = sum(1 for a, b in zip(original, reclassified) if a is b)
        print(
            f"\nDataset round-trip: {matches}/{len(loaded)} identical "
            "classifications after save/load"
        )


if __name__ == "__main__":
    main()
