"""Re-run the entire 195-project study and print every figure.

This regenerates the canonical corpus, mines all 195 projects through
the textual pipeline, and prints Figures 4–8 plus the §7 statistics and
the headline numbers — the complete evaluation of the paper in one run.
A per-project measures CSV is written next to this script.

Run:  python examples/full_study.py
"""

from pathlib import Path

from repro.analysis import canonical_study
from repro.io import export_measures_csv
from repro.report import (
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_statistics,
)


def main() -> None:
    study = canonical_study()
    print(f"Mined {len(study)} projects; skipped {len(study.skipped)}\n")

    print("Headline numbers (paper values in parentheses):")
    paper = {
        "always_over_time": 80,
        "always_over_source": 57,
        "always_over_both": 55,
        "attain75_first20": 98,
        "attain75_after80": 27,
        "attain80_first20": 94,
        "attain100_first20": 60,
        "attain100_first50": 93,
        "attain100_after80": 62,
        "blanks": 2,
    }
    for key, value in study.headline().items():
        reference = f"  (paper: {paper[key]})" if key in paper else ""
        print(f"  {key}: {value}{reference}")
    print()

    for block in (
        render_fig4(study.fig4()),
        render_fig5(study.fig5()),
        render_fig6(study.fig6()),
        render_fig7(study.fig7()),
        render_fig8(study.fig8()),
        render_statistics(study.statistics()),
    ):
        print(block)
        print()

    out_dir = Path(__file__).parent / "study_output"
    csv_path = out_dir / "measures.csv"
    export_measures_csv(study, csv_path)
    print(f"Per-project measures written to {csv_path}")

    from repro.report import write_svg_figures

    for svg_path in write_svg_figures(study, out_dir):
        print(f"SVG figure written to {svg_path}")


if __name__ == "__main__":
    main()
