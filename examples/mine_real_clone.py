"""Mine a *real* git repository, end to end.

The synthetic corpus exists because the original 195 GitHub projects
need network access — but the pipeline itself is the paper's: this
example builds an actual git repository on disk (six months of commits
with a schema that grows), then runs the same collection step the paper
ran (`git log --name-status --no-merges --date=iso` + per-version
`git show`) and the full measurement stack on it.

Point `mine_clone()` at any local clone with a single-DDL-file schema to
reproduce the study on real data.

Run:  python examples/mine_real_clone.py   (requires the git binary)
"""

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.analysis import analyze_project
from repro.mining import mine_clone
from repro.report import render_joint_progress

COMMITS = [
    # (date, message, {path: content})
    (
        "2020-01-15T10:00:00 +0000",
        "initial import",
        {
            "schema.sql": (
                "CREATE TABLE users (id INT PRIMARY KEY, "
                "name VARCHAR(40));\n"
            ),
            "src/app.py": "print('hello')\n",
            "src/db.py": "def connect(): pass\n",
        },
    ),
    (
        "2020-02-20T11:00:00 +0000",
        "add posts and email",
        {
            "schema.sql": (
                "CREATE TABLE users (id INT PRIMARY KEY, "
                "name VARCHAR(40), email TEXT);\n"
                "CREATE TABLE posts (pid INT PRIMARY KEY, body TEXT, "
                "author INT REFERENCES users(id));\n"
            ),
            "src/db.py": "def connect(): return 42\n",
        },
    ),
    (
        "2020-04-05T09:00:00 +0000",
        "widen name column",
        {
            "schema.sql": (
                "CREATE TABLE users (id INT PRIMARY KEY, "
                "name VARCHAR(120), email TEXT);\n"
                "CREATE TABLE posts (pid INT PRIMARY KEY, body TEXT, "
                "author INT REFERENCES users(id));\n"
            ),
        },
    ),
    (
        "2020-06-10T16:00:00 +0000",
        "bugfixes only",
        {"src/app.py": "print('hello, world')\n"},
    ),
]


def build_repo(root: Path) -> None:
    env = {
        "GIT_AUTHOR_NAME": "Demo Dev",
        "GIT_AUTHOR_EMAIL": "demo@example.org",
        "GIT_COMMITTER_NAME": "Demo Dev",
        "GIT_COMMITTER_EMAIL": "demo@example.org",
        "HOME": str(root),
        "PATH": "/usr/bin:/bin:/usr/local/bin",
    }
    subprocess.run(
        ["git", "-C", str(root), "init", "-q"], check=True, env=env
    )
    for date, message, files in COMMITS:
        for path, content in files.items():
            target = root / path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content)
        commit_env = dict(
            env, GIT_AUTHOR_DATE=date, GIT_COMMITTER_DATE=date
        )
        subprocess.run(
            ["git", "-C", str(root), "add", "."], check=True, env=commit_env
        )
        subprocess.run(
            ["git", "-C", str(root), "commit", "-q", "-m", message],
            check=True,
            env=commit_env,
        )


def main() -> int:
    if shutil.which("git") is None:
        print("git binary not available; skipping", file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory() as tmp:
        clone = Path(tmp) / "demo-project"
        clone.mkdir()
        build_repo(clone)

        history = mine_clone(clone)
        measures = analyze_project(history)

        print(f"Mined real clone: {history.name}")
        print(f"DDL file: {history.ddl_path}")
        print(
            f"Duration: {measures.duration_months} months, "
            f"{measures.schema_commits} schema commits "
            f"({measures.active_schema_commits} active)"
        )
        print(f"Schema activity: {measures.schema_total_activity:g}")
        print(f"Taxon: {measures.taxon.display_name}")
        print()
        print(render_joint_progress(measures.joint, title=history.name))
        print()
        print(f"10%-synchronicity: {measures.sync10:.0%}")
        print(
            f"75% of evolution attained at "
            f"{measures.attainment(0.75):.0%} of project life"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
