"""A single-project case study, mirroring §3.3 of the paper.

The paper walks through mapbox/osm-comments-parser: a 22-month
JavaScript project with a Postgres schema, 48% of schema change at
start-up and two flat-line periods.  Here we generate a synthetic
analogue with the same envelope (22 months, Postgres, moderate change),
run the full extraction pipeline on its textual artifacts, and print
the same per-project narrative the paper gives.

Run:  python examples/case_study.py
"""

from repro.analysis import analyze_project
from repro.corpus import ProjectSpec, generate_project, profile_for
from repro.heartbeat import Month
from repro.mining import mine_project
from repro.report import render_joint_progress
from repro.taxa import Taxon


def main() -> None:
    spec = ProjectSpec(
        name="mapbox/osm-comments-parser-analogue",
        taxon=Taxon.MODERATE,
        seed=4815162342,
        vendor="postgres",
        duration_months=22,
        start=Month(2015, 6),
    )
    project = generate_project(spec, profile_for(Taxon.MODERATE))
    history = mine_project(project.repository)
    measures = analyze_project(history, true_taxon=spec.taxon)

    print(f"Project:  {history.name}")
    print(f"Duration: {measures.duration_months} months")
    print(
        f"Commits:  {len(project.repository.commits)} total, "
        f"{history.schema_history.commit_count} touching the schema "
        f"({history.schema_history.active_commit_count} active)"
    )
    print(
        f"Activity: schema={measures.schema_total_activity:g} "
        f"attribute-level changes, "
        f"project={measures.project_total_updates:g} file updates"
    )
    print(f"Taxon:    {measures.taxon.display_name} (classified)")
    print()
    print(render_joint_progress(measures.joint, title="Joint progress"))
    print()

    schema_cum = measures.joint.schema
    print(
        f"Schema change at start-up: {schema_cum[0]:.0%} "
        "(the paper's project: 48%)"
    )
    for alpha in (0.50, 0.80):
        print(
            f"{alpha:.0%} of schema change attained at "
            f"{measures.attainment(alpha):.0%} of project life"
        )
    print(
        f"Cumulative schema and source within 10% of each other for "
        f"{measures.sync10:.0%} of the months"
    )


if __name__ == "__main__":
    main()
