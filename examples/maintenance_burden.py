"""Quantify the cost of schema evolution to application code.

The paper's closing conjecture is that developers freeze schemata
*because* schema change breaks the surrounding source.  This example
makes the cost concrete for one actively-evolving project: a 20-query
embedded-SQL workload is generated against the initial schema, the
project's real schema history is replayed transition by transition, and
every break / at-risk / drift event is tallied — with the workload
"repaired" after each hit, the way a maintainer would.

Run:  python examples/maintenance_burden.py
"""

from repro.analysis import replay_burden
from repro.corpus import ProjectSpec, generate_project, profile_for
from repro.heartbeat import Month
from repro.mining import mine_project
from repro.taxa import Taxon


def main() -> None:
    spec = ProjectSpec(
        name="acme/billing-active",
        taxon=Taxon.ACTIVE,
        seed=20230707,
        vendor="mysql",
        duration_months=72,
        start=Month(2011, 3),
    )
    project = generate_project(spec, profile_for(Taxon.ACTIVE))
    history = mine_project(project.repository).schema_history

    summary = replay_burden(
        history, name=project.name, n_queries=20, seed=99
    )

    print(f"Project: {summary.name}")
    print(
        f"Schema history: {history.commit_count} versions, "
        f"{summary.total_activity} atomic changes"
    )
    print(f"Workload: {summary.workload_size} embedded queries\n")

    print("Transition-by-transition impact (active transitions only):")
    print(f"{'ver':>4} {'activity':>9} {'breaks':>7} "
          f"{'at-risk':>8} {'drifts':>7}")
    for burden in summary.transitions:
        if burden.activity == 0 and burden.affected == 0:
            continue
        print(
            f"{burden.index:>4} {burden.activity:>9} "
            f"{burden.breaks:>7} {burden.at_risk:>8} {burden.drifts:>7}"
        )

    print(
        f"\nTotals: {summary.total_breaks} breaks, "
        f"{summary.total_affected} affected query-events"
    )
    print(
        f"Cost factor: {summary.affected_per_change:.2f} affected "
        "queries per atomic schema change"
    )
    print(
        "(compare [28]: ~19 code changes per table addition; "
        "[24]: 10-100 LoC per atomic change)"
    )


if __name__ == "__main__":
    main()
