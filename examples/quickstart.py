"""Quickstart: parse two versions of a schema and measure the change.

This is the paper's atomic step: given two subsequent versions of a
project's DDL file, decompose the transition into attribute-level atomic
changes and sum them into Total Activity.

Run:  python examples/quickstart.py
"""

from repro.diff import diff_ddl
from repro.sqlparser import parse_schema

VERSION_1 = """
-- version 1 of the schema, as committed to git
CREATE TABLE users (
  id INT NOT NULL AUTO_INCREMENT,
  name VARCHAR(40) NOT NULL,
  email VARCHAR(100),
  PRIMARY KEY (id)
) ENGINE=InnoDB;

CREATE TABLE posts (
  pid INT NOT NULL,
  body TEXT,
  PRIMARY KEY (pid)
);
"""

VERSION_2 = """
-- version 2: a type widened, a column dropped, a table added
CREATE TABLE users (
  id BIGINT NOT NULL AUTO_INCREMENT,
  name VARCHAR(40) NOT NULL,
  PRIMARY KEY (id)
) ENGINE=InnoDB;

CREATE TABLE posts (
  pid INT NOT NULL,
  body TEXT,
  PRIMARY KEY (pid)
);

CREATE TABLE tags (
  tid INT NOT NULL,
  label VARCHAR(30),
  PRIMARY KEY (tid)
);
"""


def main() -> None:
    schema_v1 = parse_schema(VERSION_1).schema
    schema_v2 = parse_schema(VERSION_2).schema
    print(
        f"v1: {len(schema_v1)} tables, "
        f"{schema_v1.attribute_count} attributes "
        f"({schema_v1.dialect} dialect)"
    )
    print(
        f"v2: {len(schema_v2)} tables, "
        f"{schema_v2.attribute_count} attributes"
    )

    delta = diff_ddl(VERSION_1, VERSION_2)
    print("\nAtomic changes of the transition:")
    for change in delta:
        print(f"  {change}")

    breakdown = delta.breakdown
    print(f"\nTotal Activity of this transition: {breakdown.total}")
    for key, value in breakdown.as_dict().items():
        if key != "total" and value:
            print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
