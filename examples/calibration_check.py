"""Check a corpus against the paper's calibration contract.

The synthetic generator is tuned so that the canonical corpus lands in
acceptance bands around the paper's reported values.  This example shows
the workflow for anyone re-tuning the taxon profiles: run the study,
score it against every calibration target, and inspect the misses — plus
the survival-curve and author-concentration views that complement the
headline numbers.

Run:  python examples/calibration_check.py
"""

from repro.analysis import (
    author_stats,
    canonical_study,
    schema_survival,
)
from repro.corpus import calibration_report, generate_corpus
from repro.stats import median


def main() -> None:
    study = canonical_study()

    report = calibration_report(study)
    print(report.render())
    if not report.ok:
        print("\nMISSED TARGETS:")
        for outcome in report.misses():
            print(f"  {outcome}")

    print("\n--- survival view (gravitation to rigidity) ---")
    survival = schema_survival(study.projects)
    for t in (0.2, 0.5, 0.8):
        print(
            f"schemata gone quiet by {t:.0%} of life: "
            f"{survival.share_quiet_by(t):.0%}"
        )
    print(
        f"never evolved: {survival.never_evolved}, "
        f"still evolving at the end (censored): {survival.censored}"
    )

    print("\n--- developer concentration (the §3.3 pattern) ---")
    corpus = generate_corpus()
    stats = [
        author_stats(p.repository, p.spec.ddl_path) for p in corpus
    ]
    print(
        "median top-author commit share: "
        f"{median([s.top_commit_share for s in stats]):.0%}"
    )
    print(
        "single-maintainer projects (top author >= 80%): "
        f"{sum(s.single_maintainer for s in stats)} of {len(stats)}"
    )
    schema_shares = [
        s.schema_top_share for s in stats if s.schema_top_share is not None
    ]
    print(
        "median schema-commit concentration: "
        f"{median(schema_shares):.0%} "
        "(the paper's case study: 90% by one developer)"
    )


if __name__ == "__main__":
    main()
