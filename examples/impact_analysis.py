"""Change-impact analysis: which queries break under a schema change?

The paper's implications section (§9) calls for tooling that identifies
"the parts of the code affected by a schema change ... with high
precision and recall".  This example exercises the querydep extension:
it extracts embedded SQL from application sources, diffs two schema
versions, classifies the impact per query, and then derives a
co-evolution patch (the [25]-style joint schema + query adaptation) for
the mechanically fixable part.

Run:  python examples/impact_analysis.py
"""

from repro.diff import diff_ddl
from repro.migrate import plan_coevolution
from repro.querydep import Impact, analyze_impact, extract_from_files
from repro.smo import RenameAttribute

SCHEMA_V1 = """
CREATE TABLE users (id INT, name VARCHAR(40), email TEXT, age INT);
CREATE TABLE posts (pid INT, body TEXT, author INT);
CREATE TABLE sessions (sid INT, token TEXT, user_id INT);
"""

SCHEMA_V2 = """
CREATE TABLE users (id BIGINT, name VARCHAR(40), age INT);
CREATE TABLE posts (pid INT, body TEXT, author INT, created TIMESTAMP);
"""

APPLICATION = {
    "app/models.py": '''
GET_USER = "SELECT id, name, email FROM users WHERE id = %s"
LIST_POSTS = "SELECT p.pid, p.body FROM posts p WHERE p.author = %s"
''',
    "app/auth.py": '''
FIND_SESSION = "SELECT token FROM sessions WHERE sid = %s"
TOUCH = "UPDATE sessions SET token = %s WHERE sid = %s"
''',
    "app/export.py": '''
DUMP_USERS = "SELECT * FROM users"
COUNT = "SELECT COUNT(pid) FROM posts"
''',
}


def main() -> None:
    queries = extract_from_files(APPLICATION)
    print(f"Extracted {len(queries)} embedded queries:")
    for query in queries:
        print(f"  {query.file}:{query.line}  [{query.kind}]")

    delta = diff_ddl(SCHEMA_V1, SCHEMA_V2)
    print(f"\nSchema transition: {delta.total_activity} atomic changes")
    for change in delta:
        print(f"  {change}")

    report = analyze_impact(queries, delta)
    print(
        f"\nImpact: {report.affected_count} of {len(report)} queries "
        "affected"
    )
    for query_impact in report:
        if query_impact.impact is Impact.UNAFFECTED:
            continue
        query = query_impact.query
        print(f"\n  {query.file}:{query.line} -> {query_impact.impact.value}")
        for reason in query_impact.reasons:
            print(f"      {reason}")

    # a mechanically fixable change: rename users.name -> full_name
    print("\n--- co-evolution patch for RENAME users.name -> full_name ---")
    plan = plan_coevolution(
        [RenameAttribute("users", "name", "full_name")],
        [query.text for query in queries],
        dialect="postgres",
    )
    print(plan.ddl)
    print(f"{plan.queries_changed} query rewritten:")
    for patch in plan.patches:
        if patch.changed:
            print(f"  before: {patch.original}")
            print(f"  after:  {patch.text}")


if __name__ == "__main__":
    main()
